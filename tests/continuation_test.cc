// Pending-round session continuations: the PendingOracle backend, the
// router's kIdle/kRunning/kAwaitingUser state machine, the
// PendingRounds()/ProvideAnswers embedding-server protocol, and the
// resumption-by-replay determinism contract.
//
// The load-bearing properties:
//   * a session blocked on a real user holds no lane (another session can
//     run on a one-lane router while the first waits),
//   * resumption replays the answered prefix, so after the final resume
//     every observable is bit-identical to a synchronous run over the
//     same answers,
//   * malformed ProvideAnswers calls (stale round id, wrong answer count,
//     unknown/closed session) are rejected without touching the session.
//
// Runs under the tsan preset in CI (ctest label: continuation).

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "src/core/normalize.h"
#include "src/core/random_query.h"
#include "src/learn/pac.h"
#include "src/oracle/pending.h"
#include "src/session/router.h"
#include "src/util/bit_span.h"
#include "src/util/suspend.h"
#include "tests/session_fingerprint.h"

namespace qhorn {
namespace {

// ---------------------------------------------------------------------------
// PendingOracle unit behaviour.

TEST(PendingOracleTest, NonEmptyRoundRecordsQuestionsAndSuspends) {
  PendingOracle oracle;
  oracle.set_session_id(42);
  oracle.BeginAttempt(/*next_round_id=*/3);
  Rng rng(1);
  std::vector<TupleSet> questions = {RandomObject(4, rng, 3),
                                     RandomObject(4, rng, 3)};
  BitVec bits;
  EXPECT_THROW(oracle.IsAnswerBatch(questions, bits.Prepare(2)), JobSuspended);
  ASSERT_TRUE(oracle.has_pending());
  PendingRound round = oracle.TakePending();
  EXPECT_EQ(round.session_id, 42);
  EXPECT_EQ(round.round_id, 3);
  ASSERT_EQ(round.questions.size(), 2u);
  EXPECT_EQ(round.questions[0], questions[0]);
  EXPECT_EQ(round.questions[1], questions[1]);
  EXPECT_FALSE(oracle.has_pending());
  EXPECT_EQ(oracle.suspensions(), 1);

  // The single-question path is a one-question round.
  oracle.BeginAttempt(4);
  EXPECT_THROW(oracle.IsAnswer(questions[0]), JobSuspended);
  round = oracle.TakePending();
  EXPECT_EQ(round.round_id, 4);
  ASSERT_EQ(round.questions.size(), 1u);
}

TEST(PendingOracleTest, EmptyRoundIsANoOpNotASuspension) {
  PendingOracle oracle;
  oracle.BeginAttempt(0);
  BitVec bits;
  EXPECT_NO_THROW(oracle.IsAnswerBatch({}, bits.Prepare(0)));
  EXPECT_FALSE(oracle.has_pending());
  EXPECT_EQ(oracle.suspensions(), 0);
}

// ---------------------------------------------------------------------------
// Driving a pending session to completion: the embedding-server loop.

/// Answers every pending round from the per-session ground truth until no
/// session is awaiting; returns the number of rounds answered.
int64_t AnswerAllPending(
    SessionRouter& router,
    const std::map<SessionRouter::SessionId, QueryOracle*>& truths) {
  int64_t answered = 0;
  for (;;) {
    router.Drain();
    std::vector<PendingRound> rounds = router.PendingRounds();
    if (rounds.empty()) return answered;
    for (PendingRound& round : rounds) {
      QueryOracle* truth = truths.at(round.session_id);
      BitVec bits;
      BitSpan span = bits.Prepare(round.questions.size());
      truth->IsAnswerBatch(round.questions, span);
      EXPECT_EQ(router.ProvideAnswers(round.session_id, round.round_id, span),
                ProvideOutcome::kResumed);
      ++answered;
    }
  }
}

Query SmallTarget(int n, uint64_t seed) {
  Rng rng(seed);
  RpOptions opts;
  opts.num_heads = 1;
  opts.theta = 2;
  opts.num_conjunctions = 2;
  opts.conj_size_max = std::min(3, n);
  return RandomRolePreserving(n, rng, opts);
}

TEST(ContinuationTest, PendingLearnMatchesSynchronousRunBitForBit) {
  Query target = SmallTarget(6, 11);
  for (int lanes : {1, 4}) {
    // Pending arm: every user round suspends; the test plays the human.
    SessionRouter::Options opts;
    opts.threads = lanes;
    SessionRouter pending_router(opts);
    SessionRouter::SessionId pid = pending_router.OpenPending(6);
    QueryOracle truth(target);
    EXPECT_TRUE(pending_router.SubmitLearn(pid));
    int64_t rounds_answered = AnswerAllPending(pending_router, {{pid, &truth}});
    EXPECT_GT(rounds_answered, 1);
    EXPECT_EQ(pending_router.status(pid), SessionStatus::kIdle);
    EXPECT_EQ(pending_router.suspensions(pid), rounds_answered);

    // Synchronous arm: the identical user answering inline, one lane.
    SessionRouter::Options sync_opts;
    sync_opts.threads = 1;
    SessionRouter sync_router(sync_opts);
    QueryOracle sync_truth(target);
    SessionRouter::SessionId sid = sync_router.Open(6, &sync_truth);
    sync_router.SubmitLearn(sid);
    sync_router.Drain();

    EXPECT_EQ(SessionFingerprint(pending_router.session(pid)),
              SessionFingerprint(sync_router.session(sid)))
        << "pending continuation diverged from the synchronous run at "
        << lanes << " lanes";
    ASSERT_TRUE(pending_router.session(pid).current_query().has_value());
    EXPECT_TRUE(
        Equivalent(*pending_router.session(pid).current_query(), target));
  }
}

TEST(ContinuationTest, MultiJobSessionCountsEachJobOnce) {
  // Learn + verify + revise on one pending session: every resume re-runs
  // the job log from the start, but completions are counted exactly once.
  Query target = SmallTarget(5, 3);
  SessionRouter::Options opts;
  opts.threads = 2;
  SessionRouter router(opts);
  SessionRouter::SessionId id = router.OpenPending(5);
  QueryOracle truth(target);
  EXPECT_TRUE(router.SubmitLearn(id));
  EXPECT_TRUE(router.SubmitVerify(id, target));
  EXPECT_TRUE(router.SubmitRevise(id, target));
  AnswerAllPending(router, {{id, &truth}});
  ServiceStats stats = router.stats();
  EXPECT_EQ(stats.jobs, 3);
  EXPECT_EQ(stats.learns, 1);
  EXPECT_EQ(stats.verifies, 1);
  EXPECT_EQ(stats.revisions, 1);
  EXPECT_GE(stats.suspensions, 2);
  EXPECT_EQ(stats.awaiting_sessions, 0);
  EXPECT_TRUE(Equivalent(*router.session(id).current_query(), target));
}

TEST(ContinuationTest, BlockedSessionYieldsItsOnlyLane) {
  // One lane, two pending sessions. A suspends first and stays blocked;
  // B must be able to run — and fully complete — on the lane A released.
  Query target_a = SmallTarget(5, 7);
  Query target_b = SmallTarget(5, 8);
  SessionRouter::Options opts;
  opts.threads = 1;
  SessionRouter router(opts);
  SessionRouter::SessionId a = router.OpenPending(5);
  SessionRouter::SessionId b = router.OpenPending(5);
  QueryOracle truth_b(target_b);
  router.SubmitLearn(a);
  router.SubmitLearn(b);
  router.Drain();
  EXPECT_EQ(router.status(a), SessionStatus::kAwaitingUser);
  EXPECT_EQ(router.status(b), SessionStatus::kAwaitingUser);

  // Answer only B until it completes; A's user never replies.
  for (;;) {
    router.Drain();
    std::vector<PendingRound> rounds = router.PendingRounds();
    bool b_pending = false;
    for (PendingRound& round : rounds) {
      if (round.session_id != b) continue;
      b_pending = true;
      BitVec bits;
      BitSpan span = bits.Prepare(round.questions.size());
      truth_b.IsAnswerBatch(round.questions, span);
      ASSERT_EQ(router.ProvideAnswers(b, round.round_id, span),
                ProvideOutcome::kResumed);
    }
    if (!b_pending) break;
  }
  EXPECT_EQ(router.status(b), SessionStatus::kIdle);
  EXPECT_TRUE(Equivalent(*router.session(b).current_query(), target_b));
  EXPECT_EQ(router.status(a), SessionStatus::kAwaitingUser)
      << "A must still be parked — without a thread — while B finished";
  (void)target_a;
}

TEST(ContinuationTest, StatusReportsIdleThenAwaitingUser) {
  SessionRouter::Options opts;
  opts.threads = 1;  // synchronous: transitions are observable deterministically
  SessionRouter router(opts);
  SessionRouter::SessionId id = router.OpenPending(4);
  EXPECT_EQ(router.status(id), SessionStatus::kIdle);
  router.SubmitLearn(id);  // runs inline at one lane, suspends immediately
  EXPECT_EQ(router.status(id), SessionStatus::kAwaitingUser);
  std::vector<PendingRound> rounds = router.PendingRounds();
  ASSERT_EQ(rounds.size(), 1u);
  EXPECT_EQ(rounds[0].session_id, id);
  EXPECT_EQ(rounds[0].round_id, 0);
  EXPECT_FALSE(rounds[0].questions.empty());
}

// ---------------------------------------------------------------------------
// Edge cases: malformed submissions and replies must reject, not corrupt.

TEST(ContinuationEdgeTest, SubmitToUnknownOrClosedSessionIsRejected) {
  SessionRouter::Options opts;
  opts.threads = 2;
  SessionRouter router(opts);
  EXPECT_FALSE(router.Submit(999, [](QuerySession&) {}));
  EXPECT_FALSE(router.SubmitLearn(999));
  EXPECT_EQ(router.status(999), std::nullopt)
      << "dashboard calls tolerate garbage ids like the rest of the protocol";
  EXPECT_EQ(router.suspensions(999), -1);

  Query target = SmallTarget(4, 1);
  SessionRouter::SessionId id = router.OpenSimulated(target);
  EXPECT_TRUE(router.SubmitLearn(id));
  router.Drain();
  EXPECT_TRUE(router.Close(id));
  EXPECT_FALSE(router.Close(id)) << "second close reports failure";
  EXPECT_FALSE(router.SubmitLearn(id)) << "closed sessions reject jobs";
  // The session object stays inspectable after Close.
  EXPECT_TRUE(router.session(id).current_query().has_value());
}

TEST(ContinuationEdgeTest, MalformedProvideAnswersRejectsWithoutCorruption) {
  Query target = SmallTarget(5, 21);
  SessionRouter::Options opts;
  opts.threads = 1;
  SessionRouter router(opts);
  SessionRouter::SessionId id = router.OpenPending(5);
  QueryOracle truth(target);
  router.SubmitLearn(id);
  router.Drain();
  ASSERT_EQ(router.status(id), SessionStatus::kAwaitingUser);
  std::vector<PendingRound> rounds = router.PendingRounds();
  ASSERT_EQ(rounds.size(), 1u);
  const PendingRound& round = rounds[0];

  BitVec bits;
  // Unknown session.
  EXPECT_EQ(router.ProvideAnswers(12345, round.round_id,
                                  bits.Prepare(round.questions.size())),
            ProvideOutcome::kUnknownSession);
  // Stale (future and past) round ids.
  EXPECT_EQ(router.ProvideAnswers(id, round.round_id + 1,
                                  bits.Prepare(round.questions.size())),
            ProvideOutcome::kStaleRound);
  EXPECT_EQ(router.ProvideAnswers(id, round.round_id - 1,
                                  bits.Prepare(round.questions.size())),
            ProvideOutcome::kStaleRound);
  // Wrong answer count.
  EXPECT_EQ(router.ProvideAnswers(id, round.round_id,
                                  bits.Prepare(round.questions.size() + 3)),
            ProvideOutcome::kAnswerCountMismatch);
  // Still awaiting, round unchanged: the rejects touched nothing.
  ASSERT_EQ(router.status(id), SessionStatus::kAwaitingUser);
  std::vector<PendingRound> after = router.PendingRounds();
  ASSERT_EQ(after.size(), 1u);
  EXPECT_EQ(after[0].round_id, round.round_id);
  EXPECT_EQ(after[0].questions.size(), round.questions.size());

  // A well-formed reply after the garbage completes the session with the
  // exact synchronous-run observables — the transcript was not corrupted.
  AnswerAllPending(router, {{id, &truth}});
  QueryOracle sync_truth(target);
  SessionRouter::Options sync_opts;
  sync_opts.threads = 1;
  SessionRouter sync_router(sync_opts);
  SessionRouter::SessionId sid = sync_router.Open(5, &sync_truth);
  sync_router.SubmitLearn(sid);
  sync_router.Drain();
  EXPECT_EQ(SessionFingerprint(router.session(id)),
            SessionFingerprint(sync_router.session(sid)));

  // Answers for a session that is not awaiting.
  EXPECT_EQ(router.ProvideAnswers(id, 0, bits.Prepare(1)),
            ProvideOutcome::kNotAwaiting);
}

TEST(ContinuationEdgeTest, CloseAbandonsAPendingRound) {
  SessionRouter::Options opts;
  opts.threads = 1;
  SessionRouter router(opts);
  SessionRouter::SessionId id = router.OpenPending(4);
  router.SubmitLearn(id);
  router.Drain();
  ASSERT_EQ(router.status(id), SessionStatus::kAwaitingUser);
  ASSERT_EQ(router.PendingRounds().size(), 1u);
  EXPECT_TRUE(router.Close(id));
  EXPECT_TRUE(router.PendingRounds().empty());
  BitVec bits;
  EXPECT_EQ(router.ProvideAnswers(id, 0, bits.Prepare(1)),
            ProvideOutcome::kSessionClosed);
  // Drain returns immediately: the abandoned jobs are not runnable.
  router.Drain();
  ServiceStats stats = router.stats();
  EXPECT_EQ(stats.jobs, 0);
  EXPECT_EQ(stats.awaiting_sessions, 0);
}

TEST(ContinuationEdgeTest, SubmitWhileAwaitingQueuesBehindTheAnswer) {
  Query target = SmallTarget(5, 31);
  SessionRouter::Options opts;
  opts.threads = 2;
  SessionRouter router(opts);
  SessionRouter::SessionId id = router.OpenPending(5);
  QueryOracle truth(target);
  router.SubmitLearn(id);
  router.Drain();
  ASSERT_EQ(router.status(id), SessionStatus::kAwaitingUser);
  // A verify submitted while blocked must wait for the user, then run.
  EXPECT_TRUE(router.SubmitVerify(id, target));
  router.Drain();  // still blocked: the verify is not runnable yet
  EXPECT_EQ(router.status(id), SessionStatus::kAwaitingUser);
  AnswerAllPending(router, {{id, &truth}});
  ServiceStats stats = router.stats();
  EXPECT_EQ(stats.jobs, 2);
  EXPECT_EQ(stats.learns, 1);
  EXPECT_EQ(stats.verifies, 1);
  EXPECT_TRUE(Equivalent(*router.session(id).current_query(), target));
}

TEST(ContinuationEdgeTest, OutOfOrderAndDuplicateDeliveryAcrossPendingRounds) {
  // Three sessions, all suspended concurrently. Answers arrive in reverse
  // session order (out of order with respect to PendingRounds' ordering),
  // interleaved with duplicate and stale deliveries — every duplicate or
  // stale round id must reject without touching any session, and the
  // final observables must still equal the synchronous replay.
  SessionRouter::Options opts;
  opts.threads = 1;  // inline: each resume runs to its next suspension
  SessionRouter router(opts);
  std::vector<Query> targets;
  std::vector<SessionRouter::SessionId> ids;
  std::vector<std::unique_ptr<QueryOracle>> truths;
  std::map<SessionRouter::SessionId, QueryOracle*> truth_of;
  for (uint64_t s = 0; s < 3; ++s) {
    targets.push_back(SmallTarget(5, 61 + s));
    ids.push_back(router.OpenPending(5));
    truths.push_back(std::make_unique<QueryOracle>(targets.back()));
    truth_of[ids.back()] = truths.back().get();
    router.SubmitLearn(ids.back());
  }
  router.Drain();
  std::vector<PendingRound> rounds = router.PendingRounds();
  ASSERT_EQ(rounds.size(), 3u) << "all three sessions must be pending at once";

  // Reverse delivery order; after each accepted answer, re-deliver the
  // same round (duplicate) and the already-consumed round id (stale).
  BitVec bits;
  for (size_t i = rounds.size(); i > 0; --i) {
    PendingRound& round = rounds[i - 1];
    BitSpan span = bits.Prepare(round.questions.size());
    truth_of.at(round.session_id)->IsAnswerBatch(round.questions, span);
    ASSERT_EQ(router.ProvideAnswers(round.session_id, round.round_id, span),
              ProvideOutcome::kResumed);
    // Snapshot the session's state after the resume (at one lane the
    // resume ran inline: the session is idle or pending its next round).
    std::optional<SessionStatus> before = router.status(round.session_id);
    int64_t suspensions_before = router.suspensions(round.session_id);
    // Duplicate of the just-answered round: the session either finished
    // (kNotAwaiting) or pends round_id+1 (kStaleRound) — never kResumed.
    ProvideOutcome dup = router.ProvideAnswers(
        round.session_id, round.round_id, bits.Prepare(round.questions.size()));
    EXPECT_TRUE(dup == ProvideOutcome::kNotAwaiting ||
                dup == ProvideOutcome::kStaleRound)
        << "duplicate delivery resumed a session twice";
    // A round id from the future must also bounce.
    ProvideOutcome future = router.ProvideAnswers(
        round.session_id, round.round_id + 7,
        bits.Prepare(round.questions.size()));
    EXPECT_TRUE(future == ProvideOutcome::kNotAwaiting ||
                future == ProvideOutcome::kStaleRound);
    // Neither garbage delivery changed anything observable.
    EXPECT_EQ(router.status(round.session_id), before);
    EXPECT_EQ(router.suspensions(round.session_id), suspensions_before);
  }

  // Drive everything home (answers keep arriving in reverse order).
  for (;;) {
    router.Drain();
    std::vector<PendingRound> live = router.PendingRounds();
    if (live.empty()) break;
    for (size_t i = live.size(); i > 0; --i) {
      PendingRound& round = live[i - 1];
      BitSpan span = bits.Prepare(round.questions.size());
      truth_of.at(round.session_id)->IsAnswerBatch(round.questions, span);
      ASSERT_EQ(router.ProvideAnswers(round.session_id, round.round_id, span),
                ProvideOutcome::kResumed);
    }
  }

  // Bit-identical to the synchronous run despite the hostile delivery.
  SessionRouter::Options sync_opts;
  sync_opts.threads = 1;
  SessionRouter sync_router(sync_opts);
  for (size_t s = 0; s < 3; ++s) {
    QueryOracle sync_truth(targets[s]);
    SessionRouter::SessionId sid = sync_router.Open(5, &sync_truth);
    sync_router.SubmitLearn(sid);
    sync_router.Drain();
    EXPECT_EQ(SessionFingerprint(router.session(ids[s])),
              SessionFingerprint(sync_router.session(sid)))
        << "session " << s << " diverged after out-of-order delivery";
    EXPECT_TRUE(Equivalent(*router.session(ids[s]).current_query(),
                           targets[s]));
  }
}

TEST(ContinuationEdgeTest, CloseRacesProvideAnswersCleanly) {
  // Close and ProvideAnswers racing on the same suspended session (the
  // only pinned race so far was Open vs Drain). Whatever the
  // interleaving, the outcome must be one of exactly two clean states —
  // the close won (reply rejected, transcript untouched) or the resume
  // won (answers folded, session then closed) — never a torn transcript,
  // a hang, or a crash. Runs under the tsan preset in CI.
  for (int iteration = 0; iteration < 25; ++iteration) {
    Query target = SmallTarget(5, 71 + static_cast<uint64_t>(iteration));
    SessionRouter::Options opts;
    opts.threads = 2;
    SessionRouter router(opts);
    QueryOracle truth(target);
    SessionRouter::SessionId id = router.OpenPending(5);
    router.SubmitLearn(id);
    router.Drain();
    ASSERT_EQ(router.status(id), SessionStatus::kAwaitingUser);
    std::vector<PendingRound> rounds = router.PendingRounds();
    ASSERT_EQ(rounds.size(), 1u);
    const PendingRound& round = rounds[0];
    std::string fingerprint_before = SessionFingerprint(router.session(id));

    BitVec bits;
    BitSpan span = bits.Prepare(round.questions.size());
    truth.IsAnswerBatch(round.questions, span);
    ProvideOutcome outcome = ProvideOutcome::kResumed;
    bool closed = false;
    std::thread closer([&] { closed = router.Close(id); });
    std::thread answerer(
        [&] { outcome = router.ProvideAnswers(id, round.round_id, span); });
    closer.join();
    answerer.join();

    EXPECT_TRUE(closed) << "the session was open and awaiting: Close wins";
    EXPECT_TRUE(outcome == ProvideOutcome::kResumed ||
                outcome == ProvideOutcome::kSessionClosed)
        << "race produced outcome " << static_cast<int>(outcome);
    // Whichever side won, the router must settle without external input:
    // a resumed-then-closed session abandons its next round instead of
    // re-surfacing it.
    router.Drain();
    EXPECT_TRUE(router.PendingRounds().empty())
        << "a closed session re-surfaced a pending round";
    EXPECT_EQ(router.ProvideAnswers(id, round.round_id + 1, span),
              ProvideOutcome::kSessionClosed);
    if (outcome == ProvideOutcome::kSessionClosed) {
      // Clean close: the reply bounced, so the transcript is exactly the
      // suspension-time state — not one answer leaked in.
      EXPECT_EQ(SessionFingerprint(router.session(id)), fingerprint_before)
          << "a rejected reply mutated the transcript";
    }
  }
}

TEST(ContinuationEdgeTest, CorrectAnswerRewindsASuspendedSession) {
  // The §5 correction workflow, now *supported* mid-suspension through the
  // router (this replaces the old blanket-refusal death test — the refusal
  // survives only at the QuerySession level, pinned below). The user
  // answers the first round with one flipped bit, lets the session suspend
  // on the mislearned path, then corrects the flipped entry: the session
  // must restart, replay the corrected prefix without re-asking it, and
  // converge to the exact observables of a user who answered truthfully
  // from the start. All three resume modes take the same correction path
  // (fiber mode additionally exercises the cancel/unwind of the parked
  // stack before the fresh full-prefix attempt).
  Query target = SmallTarget(5, 97);
  for (ResumeMode mode :
       {ResumeMode::kFiber, ResumeMode::kSnapshot, ResumeMode::kReplay}) {
    SessionRouter::Options opts;
    opts.threads = 1;  // inline: each resume runs to its next suspension
    opts.resume_mode = mode;
    SessionRouter router(opts);
    QueryOracle truth(target);
    SessionRouter::SessionId id = router.OpenPending(5);
    router.SubmitLearn(id);
    router.Drain();
    ASSERT_EQ(router.status(id), SessionStatus::kAwaitingUser);
    std::vector<PendingRound> rounds = router.PendingRounds();
    ASSERT_EQ(rounds.size(), 1u);
    const PendingRound round0 = rounds[0];

    // Round 0 goes back with its first answer flipped.
    BitVec bits;
    BitSpan span = bits.Prepare(round0.questions.size());
    truth.IsAnswerBatch(round0.questions, span);
    span.Set(0, !span.Get(0));
    ASSERT_EQ(router.ProvideAnswers(id, round0.round_id, span),
              ProvideOutcome::kResumed);
    ASSERT_EQ(router.status(id), SessionStatus::kAwaitingUser)
        << "one flipped bit cannot complete a learn at n=5";
    std::vector<PendingRound> mislearned = router.PendingRounds();
    ASSERT_EQ(mislearned.size(), 1u);
    const PendingRound abandoned = mislearned[0];

    // Garbage corrections first: they must reject without touching state.
    EXPECT_EQ(router.CorrectAnswer(id + 999, 0),
              ProvideOutcome::kUnknownSession);
    EXPECT_EQ(router.CorrectAnswer(id, round0.questions.size() + 50),
              ProvideOutcome::kAnswerCountMismatch);
    EXPECT_EQ(router.status(id), SessionStatus::kAwaitingUser);

    // The real correction: flip entry 0 back to the truthful answer. The
    // session restarts its job log; the corrected prefix is replayed (the
    // user is not re-asked), and the session re-suspends on the question
    // stream a truthful round 0 produces.
    ASSERT_EQ(router.CorrectAnswer(id, 0), ProvideOutcome::kResumed);
    router.Drain();
    ASSERT_EQ(router.status(id), SessionStatus::kAwaitingUser);
    // The abandoned round's id was retired: a stale reply to it bounces.
    EXPECT_EQ(router.ProvideAnswers(id, abandoned.round_id,
                                    bits.Prepare(abandoned.questions.size())),
              ProvideOutcome::kStaleRound);

    // Answer truthfully to completion; every observable must equal a
    // clean synchronous run over the truthful answer stream.
    AnswerAllPending(router, {{id, &truth}});
    EXPECT_EQ(router.status(id), SessionStatus::kIdle);
    EXPECT_EQ(router.stats().corrections, 1);
    EXPECT_TRUE(Equivalent(*router.session(id).current_query(), target));

    SessionRouter::Options sync_opts;
    sync_opts.threads = 1;
    SessionRouter sync_router(sync_opts);
    QueryOracle sync_truth(target);
    SessionRouter::SessionId sid = sync_router.Open(5, &sync_truth);
    sync_router.SubmitLearn(sid);
    sync_router.Drain();
    EXPECT_EQ(SessionFingerprint(router.session(id)),
              SessionFingerprint(sync_router.session(sid)))
        << "corrected session diverged from the truthful run under "
        << ToString(mode) << " resume";

    // Corrections require a parked round: an idle session reports
    // kNotAwaiting, a closed one kSessionClosed.
    EXPECT_EQ(router.CorrectAnswer(id, 0), ProvideOutcome::kNotAwaiting);
    EXPECT_TRUE(router.Close(id));
    EXPECT_EQ(router.CorrectAnswer(id, 0), ProvideOutcome::kSessionClosed);
  }
}

TEST(ContinuationTest, SnapshotAndReplayResumesAreBitIdentical) {
  // The three resume protocols must be observationally indistinguishable —
  // same fingerprints, same question/round/cache counters — while their
  // *replay* counters split exactly as advertised: fiber resume replays
  // nothing (the parked frame consumes the answers in place), snapshot
  // resume serves each answered question from the user-boundary replay
  // stage once, full-prefix replay re-serves the whole prefix per resume.
  Query target = SmallTarget(6, 13);
  std::string fingerprints[3];
  int64_t replayed[3] = {0, 0, 0};
  int64_t answered_questions[3] = {0, 0, 0};
  int64_t resumes[3] = {0, 0, 0};
  ResumeMode modes[3] = {ResumeMode::kFiber, ResumeMode::kSnapshot,
                         ResumeMode::kReplay};
  for (int m = 0; m < 3; ++m) {
    SessionRouter::Options opts;
    opts.threads = 1;
    opts.resume_mode = modes[m];
    SessionRouter router(opts);
    EXPECT_EQ(router.resume_mode(), modes[m]);
    QueryOracle truth(target);
    SessionRouter::SessionId id = router.OpenPending(6);
    router.SubmitLearn(id);
    router.SubmitVerify(id, target);
    for (;;) {
      router.Drain();
      std::vector<PendingRound> rounds = router.PendingRounds();
      if (rounds.empty()) break;
      ASSERT_EQ(rounds.size(), 1u);
      BitVec bits;
      BitSpan span = bits.Prepare(rounds[0].questions.size());
      truth.IsAnswerBatch(rounds[0].questions, span);
      answered_questions[m] += static_cast<int64_t>(rounds[0].questions.size());
      ++resumes[m];
      ASSERT_EQ(router.ProvideAnswers(id, rounds[0].round_id, span),
                ProvideOutcome::kResumed);
    }
    fingerprints[m] = SessionFingerprint(router.session(id));
    replayed[m] = router.stats().replayed_questions;
  }
  EXPECT_EQ(fingerprints[0], fingerprints[1])
      << "fiber and snapshot resume diverged on the same answer stream";
  EXPECT_EQ(fingerprints[1], fingerprints[2])
      << "snapshot and replay resume diverged on the same answer stream";
  EXPECT_EQ(answered_questions[0], answered_questions[1]);
  EXPECT_EQ(answered_questions[1], answered_questions[2]);
  EXPECT_EQ(resumes[0], resumes[1]);
  EXPECT_EQ(resumes[1], resumes[2]);
  // O(1) vs O(rounds) vs O(rounds²): fiber resume replays nothing at all;
  // snapshot replays each answered question at most once (the final
  // attempt's suffix can go unconsumed, hence ≤); full-prefix replay
  // re-serves prefixes whose sum strictly dominates.
  EXPECT_EQ(replayed[0], 0)
      << "fiber resume re-served questions despite the parked stack";
  EXPECT_LE(replayed[1], answered_questions[1]);
  EXPECT_GT(replayed[2], replayed[1])
      << "full-prefix replay should replay strictly more than snapshot "
         "resume on a multi-round session";
}

TEST(ContinuationTest, AwaitingSessionReportsItsSnapshotBytes) {
  // A parked session under snapshot resume holds its suspension snapshot;
  // the service surfaces that residency so operators can budget memory.
  SessionRouter::Options opts;
  opts.threads = 1;
  opts.resume_mode = ResumeMode::kSnapshot;
  SessionRouter router(opts);
  SessionRouter::SessionId id = router.OpenPending(5);
  router.SubmitLearn(id);
  router.Drain();
  ASSERT_EQ(router.status(id), SessionStatus::kAwaitingUser);
  ServiceStats stats = router.stats();
  EXPECT_EQ(stats.awaiting_sessions, 1);
  EXPECT_GT(stats.snapshot_bytes, 0)
      << "a suspended session must account for its parked snapshot";

  // Replay mode keeps no snapshot — the memory column must read zero.
  SessionRouter::Options ropts;
  ropts.threads = 1;
  ropts.resume_mode = ResumeMode::kReplay;
  SessionRouter replay_router(ropts);
  SessionRouter::SessionId rid = replay_router.OpenPending(5);
  replay_router.SubmitLearn(rid);
  replay_router.Drain();
  ASSERT_EQ(replay_router.status(rid), SessionStatus::kAwaitingUser);
  EXPECT_EQ(replay_router.stats().snapshot_bytes, 0);

  // Fiber mode parks a live stack; its mapped size is the session's
  // memory residency and must show up in the same column.
  SessionRouter::Options fopts;
  fopts.threads = 1;
  fopts.resume_mode = ResumeMode::kFiber;
  SessionRouter fiber_router(fopts);
  SessionRouter::SessionId fid = fiber_router.OpenPending(5);
  fiber_router.SubmitLearn(fid);
  fiber_router.Drain();
  ASSERT_EQ(fiber_router.status(fid), SessionStatus::kAwaitingUser);
  EXPECT_GT(fiber_router.stats().snapshot_bytes, 0)
      << "a parked fiber must account for its mapped stack";
}

TEST(ContinuationEdgeTest, CorrectAndRelearnIsRefusedInContinuationMode) {
  // A §5 correction invalidates the suffix of the answered rounds the
  // resume protocol replays — the session could only re-suspend on the
  // same question forever. The precondition fails loudly instead.
  // (Thread-free: a plain QuerySession, no router.)
  Query target = SmallTarget(4, 51);
  QueryOracle truth(target);
  QuerySession session(4, &truth);
  session.Learn();
  session.ResetWithUserReplay({});
  EXPECT_DEATH(session.CorrectAndRelearn(0),
               "not supported on pending-round");
}

// ---------------------------------------------------------------------------
// Open racing Drain: opening and submitting from one thread while another
// drains must neither crash nor lose jobs (run under the tsan preset).

TEST(ContinuationEdgeTest, OpenRacesDrain) {
  Query target = SmallTarget(5, 41);
  SessionRouter::Options opts;
  opts.threads = 4;
  SessionRouter router(opts);
  std::vector<SessionRouter::SessionId> ids;
  std::atomic<bool> done{false};
  std::thread opener([&] {
    for (int i = 0; i < 24; ++i) {
      SessionRouter::SessionId id = router.OpenSimulated(target);
      router.SubmitLearn(id);
      ids.push_back(id);
    }
    done.store(true, std::memory_order_release);
  });
  while (!done.load(std::memory_order_acquire)) {
    router.Drain();
  }
  opener.join();
  router.Drain();
  ServiceStats stats = router.stats();
  EXPECT_EQ(stats.sessions, 24);
  EXPECT_EQ(stats.learns, 24);
  for (SessionRouter::SessionId id : ids) {
    EXPECT_TRUE(Equivalent(*router.session(id).current_query(), target));
  }
}

}  // namespace
}  // namespace qhorn
