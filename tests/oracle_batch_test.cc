// Differential fidelity harness for the batched oracle pipeline.
//
// IsAnswerBatch's contract is question-for-question equivalence with the
// sequential IsAnswer loop. The harness runs the identical learner /
// verifier / probe-stream twice against the identical oracle stack
// (transcript → cache → counting → base): once with batches flowing
// through every override, once with a SequentialOracle adapter decomposing
// each batch into single questions below the transcript. Everything
// observable must be bit-identical — the learned query, every
// (question, response) transcript pair in order, the question/tuple/answer
// statistics at the user boundary, and the cache's hit/miss tallies — for
// every oracle type: QueryOracle in both guarantee modes, CachingOracle,
// CountingOracle, NoisyOracle with a fixed seed, and AdversaryOracle.
// The suite sweeps ≥200 seeded random queries at n ∈ {3, 8, 16, 64}.

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/core/normalize.h"
#include "src/core/random_query.h"
#include "src/learn/pac.h"
#include "src/learn/qhorn1_learner.h"
#include "src/learn/rp_learner.h"
#include "src/oracle/adversary.h"
#include "src/oracle/pipeline.h"
#include "src/oracle/transcript.h"
#include "src/session/session.h"
#include "src/util/executor.h"
#include "src/verify/verifier.h"

namespace qhorn {
namespace {

/// What one run of a workload exposes to comparison.
struct RunRecord {
  std::string payload;  ///< workload-specific result rendering
  std::vector<std::pair<TupleSet, bool>> transcript;
  OracleStats stats;
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;
};

using BaseFactory = std::function<std::unique_ptr<MembershipOracle>()>;
using Workload = std::function<std::string(MembershipOracle*)>;

RunRecord RunStack(const BaseFactory& make_base, const Workload& drive,
                   bool force_sequential) {
  std::unique_ptr<MembershipOracle> base = make_base();
  CountingOracle counting(base.get());
  CachingOracle caching(&counting);
  SequentialOracle sequential(&caching);
  TranscriptOracle transcript(force_sequential
                                  ? static_cast<MembershipOracle*>(&sequential)
                                  : &caching);
  RunRecord record;
  record.payload = drive(&transcript);
  for (const TranscriptEntry& e : transcript.entries()) {
    record.transcript.emplace_back(e.question, e.response);
  }
  record.stats = counting.stats();
  record.cache_hits = caching.hits();
  record.cache_misses = caching.misses();
  return record;
}

/// Runs the workload through the batched and the sequential path and
/// asserts every observable agrees.
void ExpectFaithful(const BaseFactory& make_base, const Workload& drive,
                    const std::string& context) {
  RunRecord batched = RunStack(make_base, drive, /*force_sequential=*/false);
  RunRecord sequential = RunStack(make_base, drive, /*force_sequential=*/true);

  EXPECT_EQ(batched.payload, sequential.payload) << context;
  EXPECT_EQ(batched.stats.questions, sequential.stats.questions) << context;
  EXPECT_EQ(batched.stats.tuples, sequential.stats.tuples) << context;
  EXPECT_EQ(batched.stats.max_tuples, sequential.stats.max_tuples) << context;
  EXPECT_EQ(batched.stats.answers, sequential.stats.answers) << context;
  EXPECT_EQ(batched.cache_hits, sequential.cache_hits) << context;
  EXPECT_EQ(batched.cache_misses, sequential.cache_misses) << context;
  ASSERT_EQ(batched.transcript.size(), sequential.transcript.size()) << context;
  for (size_t i = 0; i < batched.transcript.size(); ++i) {
    EXPECT_EQ(batched.transcript[i].first, sequential.transcript[i].first)
        << context << " question " << i;
    EXPECT_EQ(batched.transcript[i].second, sequential.transcript[i].second)
        << context << " response " << i;
  }
}

Query RandomRp(int n, uint64_t seed) {
  Rng rng(seed);
  RpOptions opts;
  opts.num_heads = n >= 8 ? 2 : 1;
  opts.theta = 2;
  opts.num_conjunctions = 3;
  opts.conj_size_max = std::min(4, n);
  return RandomRolePreserving(n, rng, opts);
}

/// A noisy simulated user owning its ground-truth oracle, so each
/// differential arm can rebuild the identical stack (same seed → same
/// flip sequence).
struct NoisyStack : MembershipOracle {
  QueryOracle truth;
  NoisyOracle noisy;
  NoisyStack(const Query& q, double flip_prob, uint64_t seed)
      : truth(q), noisy(&truth, flip_prob, seed) {}
  bool IsAnswer(const TupleSet& q) override { return noisy.IsAnswer(q); }
  void IsAnswerBatch(std::span<const TupleSet> qs, BitSpan as) override {
    noisy.IsAnswerBatch(qs, as);
  }
};

BaseFactory MakeNoisy(const Query& intended, double flip_prob, uint64_t seed) {
  return [&intended, flip_prob, seed]() -> std::unique_ptr<MembershipOracle> {
    return std::make_unique<NoisyStack>(intended, flip_prob, seed);
  };
}

/// The learner differentials also pin the restructured learners against
/// ground truth (not just the two pipeline paths against each other): the
/// learned query must agree with the hidden target on a random sample.
void ExpectMatchesTarget(const Query& learned, const Query& target,
                         uint64_t seed) {
  Rng rng(seed ^ 0x5eedULL);
  EXPECT_EQ(EstimateDisagreement(learned, target, 300, rng), 0.0)
      << "learned " << learned.ToString() << " vs target "
      << target.ToString();
}

// ---------------------------------------------------------------------------
// Learner workloads.

Workload Qhorn1Workload(int n) {
  return [n](MembershipOracle* top) {
    Qhorn1Learner learner(n, top);
    Qhorn1Structure learned = learner.Learn();
    return learned.ToQuery().ToString() + " | heads=" +
           std::to_string(learner.trace().head_questions) + " bodies=" +
           std::to_string(learner.trace().universal_body_questions) +
           " exist=" + std::to_string(learner.trace().existential_questions);
  };
}

Workload RpWorkload(int n) {
  return [n](MembershipOracle* top) {
    RpLearnerResult result = LearnRolePreserving(n, top);
    return result.query.ToString() + " | q=" +
           std::to_string(result.total_questions()) + " rounds=" +
           std::to_string(result.existential_trace.rounds) + " discarded=" +
           std::to_string(result.existential_trace.discarded_probes);
  };
}

class Qhorn1DifferentialTest
    : public ::testing::TestWithParam<std::tuple<int, uint64_t>> {};

TEST_P(Qhorn1DifferentialTest, QueryOracleBatchedEqualsSequential) {
  auto [n, seed] = GetParam();
  Rng rng(seed);
  Query target = RandomQhorn1(n, rng).ToQuery();
  // Against a truthful oracle the §3.1 learner is exact (Theorem 3.1):
  // besides the two-path fidelity, pin the learned query to the target.
  auto drive = [&, n](MembershipOracle* top) {
    Qhorn1Learner learner(n, top);
    Query learned = learner.Learn().ToQuery();
    ExpectMatchesTarget(learned, target, seed);
    return learned.ToString() + " | heads=" +
           std::to_string(learner.trace().head_questions) + " exist=" +
           std::to_string(learner.trace().existential_questions);
  };
  ExpectFaithful([&] { return std::make_unique<QueryOracle>(target); }, drive,
                 "qhorn1 n=" + std::to_string(n));
}

TEST_P(Qhorn1DifferentialTest, NoisyOracleBatchedEqualsSequential) {
  auto [n, seed] = GetParam();
  Rng rng(seed);
  Query target = RandomQhorn1(n, rng).ToQuery();
  // The qhorn-1 learner terminates under arbitrary labellings, so the
  // noise path can be driven end to end. The fixed seed makes the flip
  // sequence identical on both paths — a noisy user is still one user.
  ExpectFaithful(MakeNoisy(target, 0.2, /*seed=*/99), Qhorn1Workload(n),
                 "qhorn1+noise n=" + std::to_string(n));
}

TEST_P(Qhorn1DifferentialTest, AdversaryOracleBatchedEqualsSequential) {
  auto [n, seed] = GetParam();
  Rng rng(seed);
  std::vector<Query> candidates;
  for (int i = 0; i < 6; ++i) {
    candidates.push_back(RandomQhorn1(n, rng).ToQuery());
  }
  auto make_base = [&] {
    return std::make_unique<AdversaryOracle>(candidates);
  };
  // Payload includes the surviving candidate count: the batched adversary
  // must prune its version space exactly as the sequential one.
  auto drive = [&, n](MembershipOracle* top) {
    Qhorn1Learner learner(n, top);
    std::string learned = learner.Learn().ToQuery().ToString();
    return learned;
  };
  ExpectFaithful(make_base, drive, "qhorn1+adversary n=" + std::to_string(n));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Qhorn1DifferentialTest,
    ::testing::Combine(::testing::Values(3, 8, 16, 64),
                       ::testing::Range<uint64_t>(0, 10)));

class RpDifferentialTest
    : public ::testing::TestWithParam<std::tuple<int, uint64_t>> {};

TEST_P(RpDifferentialTest, QueryOracleBatchedEqualsSequential) {
  auto [n, seed] = GetParam();
  Query target = RandomRp(n, seed);
  // Against a truthful oracle the role-preserving learner recovers a query
  // equivalent to the target (Theorems 3.5/3.7); pin it alongside the
  // two-path fidelity so a restructuring bug that breaks *both* paths the
  // same way is still caught.
  auto drive = [&, n](MembershipOracle* top) {
    RpLearnerResult result = LearnRolePreserving(n, top);
    ExpectMatchesTarget(result.query, target, seed);
    return result.query.ToString() + " | q=" +
           std::to_string(result.total_questions());
  };
  ExpectFaithful([&] { return std::make_unique<QueryOracle>(target); }, drive,
                 "rp n=" + std::to_string(n));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RpDifferentialTest,
    ::testing::Combine(::testing::Values(3, 8, 16), ::testing::Range<uint64_t>(0, 10)));

// n = 64 role-preserving runs are heavier; a smaller seed sweep keeps the
// suite fast while still covering the widest arity.
class RpDifferentialWideTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RpDifferentialWideTest, QueryOracleBatchedEqualsSequential) {
  Query target = RandomRp(64, GetParam());
  auto drive = [&](MembershipOracle* top) {
    RpLearnerResult result = LearnRolePreserving(64, top);
    ExpectMatchesTarget(result.query, target, GetParam());
    return result.query.ToString() + " | q=" +
           std::to_string(result.total_questions());
  };
  ExpectFaithful([&] { return std::make_unique<QueryOracle>(target); }, drive,
                 "rp n=64");
}

INSTANTIATE_TEST_SUITE_P(Sweep, RpDifferentialWideTest,
                         ::testing::Range<uint64_t>(0, 4));

// ---------------------------------------------------------------------------
// Verifier and PAC workloads — robust to any labelling, so they drive the
// noisy and adversarial oracles and both guarantee modes.

Workload VerificationWorkload(const Query& given) {
  return [given](MembershipOracle* top) {
    VerificationReport report = RunVerification(BuildVerificationSet(given), top);
    std::string payload = report.accepted ? "accepted" : "rejected";
    for (const Discrepancy& d : report.discrepancies) {
      payload += " " + std::to_string(d.question_index);
    }
    payload += " | asked=" + std::to_string(report.questions_asked);
    return payload;
  };
}

Workload PacWorkload(const Query& hypothesis, uint64_t pac_seed) {
  return [hypothesis, pac_seed](MembershipOracle* top) {
    Rng rng(pac_seed);
    PacReport report = PacVerify(hypothesis, top, rng);
    return std::string(report.consistent ? "consistent" : "inconsistent") +
           " samples=" + std::to_string(report.samples) + " cx=" +
           report.counterexample.ToString(hypothesis.n());
  };
}

class VerifyDifferentialTest
    : public ::testing::TestWithParam<std::tuple<int, uint64_t>> {};

TEST_P(VerifyDifferentialTest, AllOracleTypesBothGuaranteeModes) {
  auto [n, seed] = GetParam();
  Query given = RandomRp(n, seed);
  Query intended = RandomRp(n, seed + 1000);  // usually different: rejections
  EvalOptions relaxed;
  relaxed.require_guarantees = false;

  ExpectFaithful([&] { return std::make_unique<QueryOracle>(intended); },
                 VerificationWorkload(given), "verify strict");
  ExpectFaithful(
      [&] { return std::make_unique<QueryOracle>(intended, relaxed); },
      VerificationWorkload(given), "verify relaxed");

  BaseFactory make_noisy = MakeNoisy(intended, 0.3, /*seed=*/7);
  ExpectFaithful(make_noisy, VerificationWorkload(given), "verify noisy");

  std::vector<Query> candidates;
  Rng rng(seed);
  for (int i = 0; i < 5; ++i) candidates.push_back(RandomRp(n, rng.Next()));
  ExpectFaithful([&] { return std::make_unique<AdversaryOracle>(candidates); },
                 VerificationWorkload(given), "verify adversary");

  ExpectFaithful([&] { return std::make_unique<QueryOracle>(intended); },
                 PacWorkload(given, seed), "pac strict");
  ExpectFaithful(
      [&] { return std::make_unique<QueryOracle>(intended, relaxed); },
      PacWorkload(given, seed), "pac relaxed");
  ExpectFaithful(make_noisy, PacWorkload(given, seed), "pac noisy");
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, VerifyDifferentialTest,
    ::testing::Combine(::testing::Values(3, 8, 16, 64),
                       ::testing::Range<uint64_t>(0, 7)));

// ---------------------------------------------------------------------------
// Raw probe streams: mixed batch sizes (empty, singleton, wide), duplicate
// questions inside one round and across rounds — the shapes that stress the
// caching partition and the adversary's deferred compaction.

class StreamDifferentialTest
    : public ::testing::TestWithParam<std::tuple<int, uint64_t>> {};

Workload StreamWorkload(int n, uint64_t seed) {
  return [n, seed](MembershipOracle* top) {
    Rng rng(seed);
    std::string payload;
    std::vector<TupleSet> history;
    for (int round = 0; round < 8; ++round) {
      size_t size = static_cast<size_t>(rng.Range(0, 9));
      std::vector<TupleSet> batch;
      for (size_t i = 0; i < size; ++i) {
        if (!history.empty() && rng.Chance(0.35)) {
          // Repeat an earlier question (cache hit / in-batch duplicate).
          batch.push_back(history[static_cast<size_t>(
              rng.Range(0, static_cast<int>(history.size()) - 1))]);
        } else {
          batch.push_back(RandomObject(n, rng, 5));
        }
      }
      history.insert(history.end(), batch.begin(), batch.end());
      BitVec answers;
      top->IsAnswerBatch(batch, answers.Prepare(batch.size()));
      payload += "|";
      for (size_t i = 0; i < batch.size(); ++i) {
        payload += answers.Get(i) ? '1' : '0';
      }
      // Interleave a single sequential question between rounds.
      TupleSet single = RandomObject(n, rng, 5);
      history.push_back(single);
      payload += top->IsAnswer(single) ? "+" : "-";
    }
    return payload;
  };
}

TEST_P(StreamDifferentialTest, AllOracleTypesBothGuaranteeModes) {
  auto [n, seed] = GetParam();
  Query intended = RandomRp(n, seed);
  EvalOptions relaxed;
  relaxed.require_guarantees = false;

  ExpectFaithful([&] { return std::make_unique<QueryOracle>(intended); },
                 StreamWorkload(n, seed), "stream strict");
  ExpectFaithful(
      [&] { return std::make_unique<QueryOracle>(intended, relaxed); },
      StreamWorkload(n, seed), "stream relaxed");

  ExpectFaithful(MakeNoisy(intended, 0.25, /*seed=*/3), StreamWorkload(n, seed),
                 "stream noisy");

  std::vector<Query> candidates;
  Rng rng(seed + 31);
  for (int i = 0; i < 7; ++i) candidates.push_back(RandomRp(n, rng.Next()));
  auto adversary_payload = [&](MembershipOracle* top) {
    return StreamWorkload(n, seed)(top);
  };
  // For the adversary, additionally pin the surviving version space.
  auto make_adversary = [&] {
    return std::make_unique<AdversaryOracle>(candidates);
  };
  {
    auto drive_with_survivors = [&](AdversaryOracle* adversary,
                                    bool force_sequential) {
      CountingOracle counting(adversary);
      SequentialOracle sequential(&counting);
      MembershipOracle* top =
          force_sequential ? static_cast<MembershipOracle*>(&sequential)
                           : &counting;
      std::string payload = adversary_payload(top);
      payload += " survivors=" + std::to_string(adversary->candidates().size());
      for (const Query& q : adversary->candidates()) {
        payload += ";" + q.ToString();
      }
      return payload;
    };
    AdversaryOracle batched(candidates);
    AdversaryOracle sequential(candidates);
    EXPECT_EQ(drive_with_survivors(&batched, false),
              drive_with_survivors(&sequential, true))
        << "adversary survivors n=" << n << " seed=" << seed;
  }
  ExpectFaithful(make_adversary, StreamWorkload(n, seed), "stream adversary");
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, StreamDifferentialTest,
    ::testing::Combine(::testing::Values(3, 8, 16, 64),
                       ::testing::Range<uint64_t>(0, 7)));

// ---------------------------------------------------------------------------
// Pipeline composition and the concurrent backend. The OraclePipeline must
// wire the identical stack the hand-built chains above use, and the
// AsyncOracle backend — rounds sharded across an executor — must be
// invisible: same answers in question order, same decorator statistics,
// same noise draws. SequentialOracle is itself a pipeline stage, so the
// reference arm is one extra Push.

RunRecord RunPipelineStack(MembershipOracle* backend, const Workload& drive,
                           bool force_sequential) {
  OraclePipeline pipeline(backend);
  CountingOracle* counting = pipeline.Push<CountingOracle>();
  CachingOracle* caching = pipeline.Push<CachingOracle>();
  if (force_sequential) pipeline.Push<SequentialOracle>();
  TranscriptOracle* transcript = pipeline.Push<TranscriptOracle>();
  RunRecord record;
  record.payload = drive(pipeline.top());
  for (const TranscriptEntry& e : transcript->entries()) {
    record.transcript.emplace_back(e.question, e.response);
  }
  record.stats = counting->stats();
  record.cache_hits = caching->hits();
  record.cache_misses = caching->misses();
  return record;
}

void ExpectRecordsEqual(const RunRecord& batched, const RunRecord& sequential,
                        const std::string& context) {
  EXPECT_EQ(batched.payload, sequential.payload) << context;
  EXPECT_EQ(batched.stats.questions, sequential.stats.questions) << context;
  EXPECT_EQ(batched.stats.answers, sequential.stats.answers) << context;
  EXPECT_EQ(batched.cache_hits, sequential.cache_hits) << context;
  EXPECT_EQ(batched.cache_misses, sequential.cache_misses) << context;
  ASSERT_EQ(batched.transcript.size(), sequential.transcript.size()) << context;
  for (size_t i = 0; i < batched.transcript.size(); ++i) {
    EXPECT_EQ(batched.transcript[i], sequential.transcript[i])
        << context << " entry " << i;
  }
}

/// Rounds wide enough to cross CompiledQuery::kParallelRoundCutover, with
/// in-round duplicates so the cache partition feeds the parallel backend
/// miss rounds of a different width than the posed rounds.
Workload WideRoundWorkload(int n, uint64_t seed) {
  return [n, seed](MembershipOracle* top) {
    Rng rng(seed);
    std::string payload;
    size_t width = 2 * CompiledQuery::kParallelRoundCutover + 37;
    for (int round = 0; round < 3; ++round) {
      std::vector<TupleSet> batch;
      batch.reserve(width);
      for (size_t i = 0; i < width; ++i) {
        if (!batch.empty() && rng.Chance(0.2)) {
          batch.push_back(batch[static_cast<size_t>(
              rng.Range(0, static_cast<int>(batch.size()) - 1))]);
        } else {
          batch.push_back(RandomObject(n, rng, 6));
        }
      }
      BitVec answers;
      top->IsAnswerBatch(batch, answers.Prepare(batch.size()));
      int64_t ones = 0;
      for (size_t i = 0; i < batch.size(); ++i) ones += answers.Get(i);
      payload += "|" + std::to_string(ones);
    }
    return payload;
  };
}

class PipelineDifferentialTest
    : public ::testing::TestWithParam<std::tuple<int, uint64_t>> {};

TEST_P(PipelineDifferentialTest, AsyncBackendEqualsSequential) {
  auto [n, seed] = GetParam();
  Query target = RandomRp(n, seed);
  auto compiled = std::make_shared<const CompiledQuery>(target);
  Executor executor(4);

  for (const auto& [name, workload] :
       std::vector<std::pair<std::string, Workload>>{
           {"rp-learn", RpWorkload(n)},
           {"wide", WideRoundWorkload(n, seed)}}) {
    // Batched arm: executor-sharded rounds. Sequential arm: the identical
    // backend decomposed question for question (never reaches the
    // parallel path — it is the semantics being preserved).
    AsyncOracle parallel_backend(compiled, &executor);
    RunRecord batched = RunPipelineStack(&parallel_backend, workload,
                                         /*force_sequential=*/false);
    AsyncOracle inline_backend(compiled, nullptr);
    RunRecord sequential = RunPipelineStack(&inline_backend, workload,
                                            /*force_sequential=*/true);
    ExpectRecordsEqual(batched, sequential,
                       "pipeline+async " + name + " n=" + std::to_string(n) +
                           " seed=" + std::to_string(seed));
  }
}

TEST_P(PipelineDifferentialTest, NoisyOverAsyncDrawsFlipsInQuestionOrder) {
  auto [n, seed] = GetParam();
  Query target = RandomRp(n, seed);
  auto compiled = std::make_shared<const CompiledQuery>(target);
  Executor executor(4);

  // The noise stage sits between the concurrent backend and the counting
  // decorators: however the executor schedules the shards below it, the
  // flip draws must consume the seed in question order.
  auto run = [&](MembershipOracle* backend, bool force_sequential) {
    OraclePipeline pipeline(backend);
    pipeline.Push<NoisyOracle>(0.25, /*seed=*/seed ^ 0xf1f5ULL);
    CountingOracle* counting = pipeline.Push<CountingOracle>();
    if (force_sequential) pipeline.Push<SequentialOracle>();
    std::string payload = WideRoundWorkload(n, seed)(pipeline.top());
    payload += " answers=" + std::to_string(counting->stats().answers);
    return payload;
  };
  AsyncOracle parallel_backend(compiled, &executor);
  AsyncOracle inline_backend(compiled, nullptr);
  EXPECT_EQ(run(&parallel_backend, false), run(&inline_backend, true))
      << "n=" << n << " seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PipelineDifferentialTest,
    ::testing::Combine(::testing::Values(8, 16, 64),
                       ::testing::Range<uint64_t>(0, 5)));

// The pipeline must compose the same stack QuerySession used to hand-wire:
// same stats, hits and transcript as the legacy harness RunStack above.
TEST(PipelineCompositionTest, MatchesHandWiredStack) {
  Query target = RandomRp(8, 21);
  Workload workload = RpWorkload(8);
  RunRecord hand = RunStack(
      [&] { return std::make_unique<QueryOracle>(target); }, workload,
      /*force_sequential=*/false);
  QueryOracle backend(target);
  RunRecord piped = RunPipelineStack(&backend, workload,
                                     /*force_sequential=*/false);
  ExpectRecordsEqual(piped, hand, "pipeline vs hand-wired");
}

// ---------------------------------------------------------------------------
// Replay: batches spanning the recorded-prefix boundary must replay the
// matching prefix and forward exactly the tail, as the sequential path does.

TEST(ReplayBatchTest, BatchSpanningPrefixBoundaryMatchesSequential) {
  Query target = Query::Parse("∀x1x2→x3 ∃x4", 4);
  QueryOracle truth(target);

  // Record a transcript of five questions.
  TranscriptOracle recorder(&truth);
  Rng rng(5);
  std::vector<TupleSet> asked;
  for (int i = 0; i < 5; ++i) {
    asked.push_back(RandomObject(4, rng, 4));
    recorder.IsAnswer(asked.back());
  }

  TupleSet fresh = RandomObject(4, rng, 4);
  // One batch: three recorded questions, a deviation, then a question that
  // matches the prefix but arrives after the divergence.
  std::vector<TupleSet> batch(asked.begin(), asked.begin() + 3);
  batch.push_back(fresh);
  batch.push_back(asked[3]);

  auto run = [&](bool force_sequential) {
    CountingOracle counting(&truth);
    ReplayOracle replay(recorder.entries(), &counting);
    SequentialOracle sequential(&replay);
    MembershipOracle* top = force_sequential
                                ? static_cast<MembershipOracle*>(&sequential)
                                : &replay;
    BitVec answers;
    top->IsAnswerBatch(batch, answers.Prepare(batch.size()));
    std::string payload;
    for (size_t i = 0; i < batch.size(); ++i) {
      payload += answers.Get(i) ? '1' : '0';
    }
    payload += " replayed=" + std::to_string(replay.replayed()) +
               " asked=" + std::to_string(replay.asked()) +
               " fresh=" + std::to_string(counting.stats().questions);
    return payload;
  };
  std::string batched = run(false);
  std::string sequential = run(true);
  EXPECT_EQ(batched, sequential);
  EXPECT_EQ(batched.substr(batched.find("replayed")),
            "replayed=3 asked=2 fresh=2");
}

// ---------------------------------------------------------------------------
// Empty rounds: IsAnswerBatch({}, {}) decomposes into *zero* IsAnswer
// calls, so sequential equivalence says it is no round at all — every
// layer must leave its counters, transcript, noise stream and version
// space untouched, and nothing may reach the layer below.

TEST(EmptyRoundTest, EmptyBatchIsANoOpThroughTheWholeStack) {
  Query target = Query::Parse("∀x1→x2 ∃x3", 3);
  QueryOracle truth(target);
  OraclePipeline pipeline(&truth);
  NoisyOracle* noisy = pipeline.Push<NoisyOracle>(0.5, /*seed=*/7);
  CountingOracle* counting = pipeline.Push<CountingOracle>();
  CachingOracle* caching = pipeline.Push<CachingOracle>();
  TranscriptOracle* transcript = pipeline.Push<TranscriptOracle>();

  BitVec bits;
  pipeline.top()->IsAnswerBatch({}, bits.Prepare(0));
  EXPECT_EQ(transcript->rounds(), 0);
  EXPECT_TRUE(transcript->entries().empty());
  EXPECT_EQ(caching->hits(), 0);
  EXPECT_EQ(caching->misses(), 0);
  EXPECT_EQ(counting->stats().rounds, 0);
  EXPECT_EQ(counting->stats().questions, 0);
  EXPECT_EQ(counting->stats().batched_questions, 0);
  EXPECT_EQ(noisy->flips(), 0);

  // Interleaved with real rounds, the empty batch consumes no round id
  // and no noise draw: the round sequence is exactly as if it never
  // happened.
  Rng rng(3);
  std::vector<TupleSet> round = {RandomObject(3, rng, 3)};
  pipeline.top()->IsAnswerBatch(round, bits.Prepare(1));
  pipeline.top()->IsAnswerBatch({}, bits.Prepare(0));
  std::vector<TupleSet> round2 = {RandomObject(3, rng, 3)};
  pipeline.top()->IsAnswerBatch(round2, bits.Prepare(1));
  EXPECT_EQ(transcript->rounds(), 2);
  ASSERT_EQ(transcript->entries().size(), 2u);
  EXPECT_EQ(transcript->entries()[0].round, 0);
  EXPECT_EQ(transcript->entries()[1].round, 1);
  EXPECT_EQ(counting->stats().rounds, 2);
}

TEST(EmptyRoundTest, AdversaryAndReplayIgnoreEmptyRounds) {
  std::vector<Query> candidates = {Query::Parse("∀x1→x2", 2),
                                   Query::Parse("∀x2→x1", 2),
                                   Query::Parse("∃x1x2", 2)};
  AdversaryOracle adversary(candidates);
  BitVec bits;
  adversary.IsAnswerBatch({}, bits.Prepare(0));
  EXPECT_EQ(adversary.candidates().size(), candidates.size())
      << "no questions were asked, so the version space is untouched";

  QueryOracle truth(Query::Parse("∀x1→x2", 2));
  TranscriptOracle recorder(&truth);
  Rng rng(5);
  TupleSet asked = RandomObject(2, rng, 2);
  recorder.IsAnswer(asked);
  ReplayOracle replay(recorder.entries(), &truth);
  replay.IsAnswerBatch({}, bits.Prepare(0));
  EXPECT_EQ(replay.replayed(), 0);
  EXPECT_EQ(replay.asked(), 0);
  // The recorded prefix is still intact for the next real question.
  EXPECT_EQ(replay.IsAnswer(asked), recorder.entries()[0].response);
  EXPECT_EQ(replay.replayed(), 1);
}

// ---------------------------------------------------------------------------
// CachingOracle forwarding: when a round's misses form one contiguous run,
// the inner oracle must receive a *view into the caller's span* — the
// copy-free regression pin for wide cached rounds. An inner probe records
// the span's data pointer to prove no TupleSet was gathered.

class SpanSpyOracle : public MembershipOracle {
 public:
  explicit SpanSpyOracle(Query target) : truth_(std::move(target)) {}

  bool IsAnswer(const TupleSet& question) override {
    return truth_.IsAnswer(question);
  }

  void IsAnswerBatch(std::span<const TupleSet> questions,
                     BitSpan answers) override {
    last_data_ = questions.data();
    last_size_ = questions.size();
    truth_.IsAnswerBatch(questions, answers);
  }

  const TupleSet* last_data() const { return last_data_; }
  size_t last_size() const { return last_size_; }

 private:
  QueryOracle truth_;
  const TupleSet* last_data_ = nullptr;
  size_t last_size_ = 0;
};

TEST(CachingForwardTest, ContiguousMissesForwardTheCallersSpanByView) {
  Query target = Query::Parse("∀x1x2→x3 ∃x4", 8);
  SpanSpyOracle spy(target);
  CachingOracle caching(&spy);
  // Provably distinct questions: each holds the single tuple whose packed
  // value is its index (n = 8 leaves room for 256 of them).
  auto distinct = [](uint64_t from, uint64_t count) {
    std::vector<TupleSet> questions;
    for (uint64_t v = from; v < from + count; ++v) {
      TupleSet q;
      q.Add(v);
      questions.push_back(std::move(q));
    }
    return questions;
  };
  std::vector<TupleSet> fresh = distinct(0, 64);

  // All-miss wide round: the inner span must alias the caller's storage.
  BitVec bits;
  caching.IsAnswerBatch(fresh, bits.Prepare(fresh.size()));
  EXPECT_EQ(spy.last_data(), fresh.data())
      << "an all-fresh round must forward questions.subspan(...), not a copy";
  EXPECT_EQ(spy.last_size(), fresh.size());
  EXPECT_EQ(caching.misses(), 64);

  // Hits at the edges keep the run contiguous: [cached, new…, cached]
  // forwards the middle of the caller's span, again by view.
  std::vector<TupleSet> edged;
  edged.push_back(fresh.front());  // hit
  for (TupleSet& q : distinct(64, 8)) edged.push_back(std::move(q));
  edged.push_back(fresh.back());  // hit
  caching.IsAnswerBatch(edged, bits.Prepare(edged.size()));
  EXPECT_EQ(spy.last_data(), edged.data() + 1);
  EXPECT_EQ(spy.last_size(), 8u);
  EXPECT_EQ(caching.hits(), 2);

  // A hit *between* misses breaks contiguity: the gather fallback fires
  // (inner sees its own storage) but the answers must still be exact.
  std::vector<TupleSet> mixed;
  mixed.push_back(distinct(80, 1)[0]);
  mixed.push_back(fresh[3]);  // hit in the middle
  mixed.push_back(distinct(81, 1)[0]);
  caching.IsAnswerBatch(mixed, bits.Prepare(mixed.size()));
  EXPECT_NE(spy.last_data(), mixed.data());
  EXPECT_EQ(spy.last_size(), 2u);
  QueryOracle reference(target);
  for (size_t i = 0; i < mixed.size(); ++i) {
    EXPECT_EQ(bits.Get(i), reference.IsAnswer(mixed[i])) << "question " << i;
  }
}

// The session's correct-and-relearn workflow rides the replay path with a
// batching learner above it; the corrected-prefix guarantee must hold.
TEST(SessionBatchTest, CorrectAndRelearnReplaysThePrefix) {
  Query target = Query::Parse("∀x1→x2 ∃x3x4 ∃x5", 5);
  QueryOracle user(target);
  QuerySession session(5, &user);
  session.Learn();
  ASSERT_GT(session.history().size(), 2u);
  int64_t rounds_before = session.rounds();
  EXPECT_GT(rounds_before, 0);
  // The batched learner asks far fewer rounds than questions.
  EXPECT_LT(rounds_before,
            static_cast<int64_t>(session.history().size()));
  const Query relearned = session.CorrectAndRelearn(1);
  EXPECT_EQ(relearned.n(), 5);
  EXPECT_GT(session.oracle_stats().batched_questions, 0);
}

}  // namespace
}  // namespace qhorn
