// The seeded workload generator and the fleet-driver differential harness
// (src/workload/): fleet generation is a pure function of the seed, the
// generated fleets are genuinely heterogeneous and hostile, and a fleet
// run through the K-lane pending protocol under adversarial delivery is
// bit-identical, session for session, to its 1-lane synchronous replay.
//
// The seed-sweeping companion is tests/workload_fuzz_test.cc; this suite
// pins the generator's and driver's individual properties on fixed specs.
// CTest labels: workload (runs under the asan and tsan CI presets).

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "src/workload/fleet_driver.h"
#include "src/workload/workload.h"

namespace qhorn {
namespace {

// ---------------------------------------------------------------------------
// Generator determinism and heterogeneity.

TEST(WorkloadGeneratorTest, FleetIsAPureFunctionOfTheSpec) {
  WorkloadSpec spec = WorkloadSpec::FromSeed(17);
  Fleet a = GenerateFleet(spec);
  Fleet b = GenerateFleet(spec);
  ASSERT_EQ(a.sessions.size(), b.sessions.size());
  for (size_t i = 0; i < a.sessions.size(); ++i) {
    const SessionSpec& x = a.sessions[i];
    const SessionSpec& y = b.sessions[i];
    EXPECT_EQ(x.query_class, y.query_class);
    EXPECT_EQ(x.n, y.n);
    EXPECT_EQ(x.target, y.target);
    EXPECT_EQ(x.mutant, y.mutant);
    EXPECT_EQ(x.flip_rate, y.flip_rate);
    EXPECT_EQ(x.noise_seed, y.noise_seed);
    EXPECT_EQ(x.jobs, y.jobs);
    EXPECT_EQ(x.abandon, y.abandon);
    EXPECT_EQ(x.abandon_after_rounds, y.abandon_after_rounds);
  }
}

TEST(WorkloadGeneratorTest, FromSeedIsDeterministicAndSeedSensitive) {
  WorkloadSpec a = WorkloadSpec::FromSeed(5);
  WorkloadSpec b = WorkloadSpec::FromSeed(5);
  EXPECT_EQ(a.sessions, b.sessions);
  EXPECT_EQ(a.lanes, b.lanes);
  EXPECT_EQ(a.noisy_fraction, b.noisy_fraction);
  EXPECT_EQ(a.malformed_rate, b.malformed_rate);
  // Nearby seeds must not collapse onto the same configuration (the fuzz
  // sweep walks a contiguous range — a weak mixer would sweep one fleet
  // 64 times).
  bool any_differ = false;
  for (uint64_t s = 6; s < 16 && !any_differ; ++s) {
    WorkloadSpec other = WorkloadSpec::FromSeed(s);
    any_differ = other.sessions != a.sessions || other.lanes != a.lanes ||
                 other.noisy_fraction != a.noisy_fraction;
  }
  EXPECT_TRUE(any_differ);
}

TEST(WorkloadGeneratorTest, SweptFleetsCoverEveryScenarioAxis) {
  std::set<QueryClass> classes;
  std::set<int> schema_sizes;
  bool saw_noisy = false;
  bool saw_abandon = false;
  bool saw_multi_job = false;
  for (uint64_t seed = 1; seed <= 24; ++seed) {
    Fleet fleet = GenerateFleet(WorkloadSpec::FromSeed(seed));
    for (const SessionSpec& s : fleet.sessions) {
      classes.insert(s.query_class);
      schema_sizes.insert(s.n);
      saw_noisy |= s.noisy();
      saw_abandon |= s.abandon;
      saw_multi_job |= s.jobs.size() > 1;
    }
  }
  EXPECT_EQ(classes.size(), 3u) << "all three query classes must appear";
  EXPECT_GT(schema_sizes.size(), 1u) << "schema sizes must vary";
  EXPECT_TRUE(saw_noisy);
  EXPECT_TRUE(saw_abandon);
  EXPECT_TRUE(saw_multi_job);
}

TEST(WorkloadGeneratorTest, NoisyUsersRunOnlyFixedQuestionSetJobs) {
  // Learners assume a consistent oracle; the generator must never hand a
  // noisy user a learn or revise job (verification's question set is
  // fixed and terminates under arbitrary labels).
  for (uint64_t seed = 1; seed <= 32; ++seed) {
    Fleet fleet = GenerateFleet(WorkloadSpec::FromSeed(seed));
    for (const SessionSpec& s : fleet.sessions) {
      if (!s.noisy()) continue;
      ASSERT_FALSE(s.jobs.empty());
      for (WorkloadJob job : s.jobs) {
        EXPECT_TRUE(job == WorkloadJob::kVerifyTarget ||
                    job == WorkloadJob::kVerifyMutant)
            << "noisy session drew job " << ToString(job);
      }
    }
  }
}

TEST(WorkloadGeneratorTest, ReproLineCarriesTheSeedFlag) {
  EXPECT_NE(WorkloadSpec::FromSeed(77).ReproLine().find("--seed=77"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// The differential harness on fixed specs.

TEST(FleetDriverTest, CleanDeliveryFleetMatchesSynchronousReplay) {
  // Everything hostile switched off: in-order full answering, no garbage,
  // no latency — the baseline sanity of the harness itself.
  WorkloadSpec spec;
  spec.seed = 101;
  spec.sessions = 6;
  spec.lanes = 4;
  spec.noisy_fraction = 0.0;
  spec.abandon_fraction = 0.0;
  spec.malformed_rate = 0.0;
  spec.duplicate_rate = 0.0;
  spec.answer_fraction = 1.0;
  spec.latency_cap_ticks = 0;
  DifferentialOutcome out = RunDifferential(spec);
  EXPECT_TRUE(out.ok) << out.failure;
  EXPECT_GT(out.pending.rounds_answered, 0);
  EXPECT_EQ(out.pending.abandoned_sessions, 0);
}

TEST(FleetDriverTest, HostileDeliveryFleetMatchesSynchronousReplay) {
  // Everything hostile switched on at fixed, aggressive rates. The sweep
  // accumulates across a few seeds so each injection kind demonstrably
  // fired at least once in this test, not just "could have".
  int64_t malformed = 0;
  int64_t duplicates = 0;
  int64_t abandoned = 0;
  for (uint64_t seed = 301; seed <= 305; ++seed) {
    WorkloadSpec spec;
    spec.seed = seed;
    spec.sessions = 8;
    spec.lanes = 3;
    spec.noisy_fraction = 0.4;
    spec.abandon_fraction = 0.3;
    spec.malformed_rate = 0.9;
    spec.duplicate_rate = 0.8;
    spec.answer_fraction = 0.5;
    spec.latency_alpha = 1.0;
    spec.latency_cap_ticks = 5;
    DifferentialOutcome out = RunDifferential(spec);
    ASSERT_TRUE(out.ok) << out.failure;
    malformed += out.pending.malformed_injected;
    duplicates += out.pending.duplicates_injected;
    abandoned += out.pending.abandoned_sessions;
  }
  EXPECT_GT(malformed, 0) << "no malformed reply was ever injected";
  EXPECT_GT(duplicates, 0) << "no duplicate delivery was ever injected";
  EXPECT_GT(abandoned, 0) << "no session was ever abandoned mid-round";
}

TEST(FleetDriverTest, AbandonedSessionsAreClosedWithoutCorruptingTheFleet) {
  WorkloadSpec spec;
  spec.seed = 404;
  spec.sessions = 6;
  spec.lanes = 2;
  spec.noisy_fraction = 0.0;
  spec.abandon_fraction = 1.0;  // every session's user walks away
  spec.malformed_rate = 0.0;
  spec.duplicate_rate = 0.0;
  spec.answer_fraction = 1.0;
  spec.latency_cap_ticks = 0;
  Fleet fleet = GenerateFleet(spec);
  FleetDriver driver(fleet);
  FleetResult pending = driver.RunPending();
  ASSERT_TRUE(pending.ok) << pending.failure;
  EXPECT_GT(pending.abandoned_sessions, 0);
  // Closed sessions carry no fingerprint; sessions that completed before
  // their abandonment threshold carry a full one.
  int64_t closed = 0;
  for (const std::string& fp : pending.fingerprints) {
    if (fp.empty()) ++closed;
  }
  EXPECT_EQ(closed, pending.abandoned_sessions);
  // The survivors still replay bit-identically.
  DifferentialOutcome out = RunDifferential(spec);
  EXPECT_TRUE(out.ok) << out.failure;
}

TEST(FleetDriverTest, DifferentialFailureMessageCarriesTheSeedRepro) {
  // The acceptance contract: every failure message contains the one-flag
  // repro. Exercised without breaking the service by comparing a fleet
  // against a *different* fleet's replay — RunDifferential itself can't
  // be forced to fail, so pin the failure string shape at its source.
  WorkloadSpec spec = WorkloadSpec::FromSeed(9001);
  EXPECT_NE(spec.ReproLine().find("--seed=9001"), std::string::npos);
  // And the driver stamps it on protocol violations: a fleet whose spec
  // lies about its own seed still formats the line from the spec.
  spec.seed = 4242;
  EXPECT_NE(spec.ReproLine().find("--seed=4242"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Lane-count invariance: the contract is per-seed, not per-configuration.

TEST(FleetDriverTest, FingerprintsAreLaneCountInvariant) {
  WorkloadSpec spec = WorkloadSpec::FromSeed(777);
  spec.abandon_fraction = 0.0;  // keep every fingerprint comparable
  Fleet fleet = GenerateFleet(spec);
  FleetDriver driver(fleet);
  FleetResult one = driver.RunPending(/*lanes_override=*/1);
  FleetResult many = driver.RunPending(/*lanes_override=*/6);
  ASSERT_TRUE(one.ok) << one.failure;
  ASSERT_TRUE(many.ok) << many.failure;
  ASSERT_EQ(one.fingerprints.size(), many.fingerprints.size());
  for (size_t i = 0; i < one.fingerprints.size(); ++i) {
    EXPECT_EQ(one.fingerprints[i], many.fingerprints[i])
        << "session " << i << " fingerprint depends on lane count";
  }
}

}  // namespace
}  // namespace qhorn
