// The pending-round continuation stress contract: 256 sessions over real
// (pending) user oracles on a 4-lane router, every session suspending at
// least twice, answers provided out of order and in partial sweeps — all
// sessions complete, no thread is ever parked per blocked session (the
// router's executor is the only thread pool: ≤ 5 threads total), and
// every per-session observable is bit-identical to a single-threaded
// synchronous replay of the same jobs over the same answers. The sharded
// variant drives the same fleet through the ShardedRouter facade at 1, 2
// and 8 shards and pins its fingerprints to the synchronous arm too.
//
// Runs under the tsan preset with QHORN_THREADS=8 in CI (the router's
// lane count is pinned to 4 explicitly; QHORN_THREADS exercises the
// executor default elsewhere). CTest label: continuation.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "src/core/normalize.h"
#include "src/core/random_query.h"
#include "src/session/router.h"
#include "src/session/sharded_router.h"
#include "src/util/bit_span.h"
#include "tests/session_fingerprint.h"

namespace qhorn {
namespace {

struct SessionPlan {
  Query target;
  // 0 = learn, 1 = verify(target), 2 = revise(target).
  std::vector<int> jobs;
};

SessionPlan MakePlan(int n, uint64_t seed) {
  Rng rng(seed);
  RpOptions opts;
  opts.num_heads = static_cast<int>(rng.Range(0, 1));
  opts.theta = 2;
  opts.num_conjunctions = static_cast<int>(rng.Range(1, 2));
  opts.conj_size_max = std::min(3, n);
  SessionPlan plan;
  plan.target = RandomRolePreserving(n, rng, opts);
  plan.jobs.push_back(0);  // always learn first
  if (rng.Chance(0.5)) {
    plan.jobs.push_back(1 + static_cast<int>(rng.Range(0, 1)));
  }
  return plan;
}

template <typename RouterT>
void SubmitPlan(RouterT& router, typename RouterT::SessionId id,
                const SessionPlan& plan) {
  for (int job : plan.jobs) {
    switch (job) {
      case 0:
        ASSERT_TRUE(router.SubmitLearn(id));
        break;
      case 1:
        ASSERT_TRUE(router.SubmitVerify(id, plan.target));
        break;
      default:
        ASSERT_TRUE(router.SubmitRevise(id, plan.target));
        break;
    }
  }
}

TEST(ContinuationStressTest, TwoHundredFiftySixSessionsOnFourLanes) {
  constexpr int kSessions = 256;
  constexpr int kLanes = 4;
  const int n = 6;

  std::vector<SessionPlan> plans;
  plans.reserve(kSessions);
  for (int s = 0; s < kSessions; ++s) {
    plans.push_back(MakePlan(n, 5000 + static_cast<uint64_t>(s)));
  }

  SessionRouter::Options opts;
  opts.threads = kLanes;
  SessionRouter router(opts);
  ASSERT_EQ(router.executor()->concurrency(), kLanes + 1)
      << "the router's pool is lanes + the draining caller, nothing more";

  // Ground truth per session — also the answer source for the sync arm,
  // so both arms see the exact same labelling of every question.
  std::vector<std::unique_ptr<QueryOracle>> truths;
  std::map<SessionRouter::SessionId, size_t> plan_of;
  std::vector<SessionRouter::SessionId> ids;
  // Thread-parking audit: every thread that ever runs a session job. A
  // raw job is re-run on every resume attempt, so inserting into a set is
  // naturally idempotent.
  std::mutex thread_ids_mutex;
  std::set<std::thread::id> job_threads;
  for (int s = 0; s < kSessions; ++s) {
    const SessionPlan& plan = plans[static_cast<size_t>(s)];
    truths.push_back(std::make_unique<QueryOracle>(plan.target));
    SessionRouter::SessionId id = router.OpenPending(n);
    plan_of[id] = static_cast<size_t>(s);
    ids.push_back(id);
    router.Submit(id, [&thread_ids_mutex, &job_threads](QuerySession&) {
      std::lock_guard<std::mutex> lock(thread_ids_mutex);
      job_threads.insert(std::this_thread::get_id());
    });
    SubmitPlan(router, id, plan);
  }

  // The embedding-server loop, adversarially scheduled: each sweep
  // shuffles the pending rounds and answers only a random ~2/3 of them
  // (at least one), so sessions resume out of order and interleave with
  // sessions that are still blocked.
  Rng sched(99);
  int64_t sweeps = 0;
  for (;;) {
    router.Drain();
    std::vector<PendingRound> rounds = router.PendingRounds();
    if (rounds.empty()) break;
    for (size_t i = rounds.size(); i > 1; --i) {
      std::swap(rounds[i - 1],
                rounds[static_cast<size_t>(sched.Range(
                    0, static_cast<int>(i) - 1))]);
    }
    size_t take = std::max<size_t>(1, (rounds.size() * 2) / 3);
    for (size_t i = 0; i < take; ++i) {
      PendingRound& round = rounds[i];
      QueryOracle* truth = truths[plan_of.at(round.session_id)].get();
      BitVec bits;
      BitSpan span = bits.Prepare(round.questions.size());
      truth->IsAnswerBatch(round.questions, span);
      ASSERT_EQ(router.ProvideAnswers(round.session_id, round.round_id, span),
                ProvideOutcome::kResumed);
    }
    ++sweeps;
  }
  EXPECT_GT(sweeps, 2);

  // Everything completed, nobody is blocked, and no session ever had a
  // thread parked for it: the only threads that ever ran jobs are the
  // executor's own lanes (4 workers; the draining test thread makes 5).
  ServiceStats stats = router.stats();
  EXPECT_EQ(stats.sessions, kSessions);
  EXPECT_EQ(stats.awaiting_sessions, 0);
  EXPECT_GE(stats.suspensions, 2 * kSessions);
  {
    std::lock_guard<std::mutex> lock(thread_ids_mutex);
    EXPECT_LE(job_threads.size(), static_cast<size_t>(kLanes + 1))
        << "blocked sessions must not spawn or park threads";
  }
  for (SessionRouter::SessionId id : ids) {
    EXPECT_EQ(router.status(id), SessionStatus::kIdle);
    EXPECT_GE(router.suspensions(id), 2)
        << "session " << id << " must have yielded its lane at least twice";
  }

  // Single-threaded synchronous replay: the same jobs over the same
  // answers, the user answering inline. Bit-identical observables.
  SessionRouter::Options sync_opts;
  sync_opts.threads = 1;
  SessionRouter sync_router(sync_opts);
  std::vector<std::unique_ptr<QueryOracle>> sync_truths;
  std::vector<SessionRouter::SessionId> sync_ids;
  for (int s = 0; s < kSessions; ++s) {
    const SessionPlan& plan = plans[static_cast<size_t>(s)];
    sync_truths.push_back(std::make_unique<QueryOracle>(plan.target));
    SessionRouter::SessionId id =
        sync_router.Open(n, sync_truths.back().get());
    sync_ids.push_back(id);
    sync_router.Submit(id, [](QuerySession&) {});
    SubmitPlan(sync_router, id, plan);
  }
  sync_router.Drain();

  for (int s = 0; s < kSessions; ++s) {
    QuerySession& pending_session =
        router.session(ids[static_cast<size_t>(s)]);
    QuerySession& sync_session =
        sync_router.session(sync_ids[static_cast<size_t>(s)]);
    ASSERT_EQ(SessionFingerprint(pending_session),
              SessionFingerprint(sync_session))
        << "session " << s << " diverged from its synchronous replay";
    ASSERT_TRUE(pending_session.current_query().has_value());
    EXPECT_TRUE(Equivalent(*pending_session.current_query(),
                           plans[static_cast<size_t>(s)].target));
  }
}

TEST(ContinuationStressTest, ShardedRouterMatchesSynchronousAcrossShardCounts) {
  // The same 256-session plan fleet, adversarially scheduled, driven
  // through the ShardedRouter facade at 1, 2 and 8 shards — external ids
  // and round merges cross the id encoding, the per-shard announcement
  // queues, and the shared compiled-query cache. Every arm's per-session
  // fingerprints must be bit-identical to a single-threaded synchronous
  // replay: shard count is a throughput knob, never an observable.
  constexpr int kSessions = 256;
  constexpr int kLanes = 4;
  const int n = 6;

  std::vector<SessionPlan> plans;
  plans.reserve(kSessions);
  for (int s = 0; s < kSessions; ++s) {
    plans.push_back(MakePlan(n, 6000 + static_cast<uint64_t>(s)));
  }

  // Synchronous reference arm: inline answers, one thread, bare router.
  SessionRouter::Options sync_opts;
  sync_opts.threads = 1;
  SessionRouter sync_router(sync_opts);
  std::vector<std::unique_ptr<QueryOracle>> sync_truths;
  std::vector<std::string> reference;
  for (int s = 0; s < kSessions; ++s) {
    const SessionPlan& plan = plans[static_cast<size_t>(s)];
    sync_truths.push_back(std::make_unique<QueryOracle>(plan.target));
    SessionRouter::SessionId id =
        sync_router.Open(n, sync_truths.back().get());
    SubmitPlan(sync_router, id, plan);
    sync_router.Drain();
    reference.push_back(SessionFingerprint(sync_router.session(id)));
  }

  for (int shards : {1, 2, 8}) {
    ShardedRouter::Options opts;
    opts.shards = shards;
    opts.threads = kLanes;
    ShardedRouter router(opts);

    std::vector<std::unique_ptr<QueryOracle>> truths;
    std::map<ShardedRouter::SessionId, size_t> plan_of;
    std::vector<ShardedRouter::SessionId> ids;
    for (int s = 0; s < kSessions; ++s) {
      const SessionPlan& plan = plans[static_cast<size_t>(s)];
      truths.push_back(std::make_unique<QueryOracle>(plan.target));
      ShardedRouter::SessionId id = router.OpenPending(n);
      plan_of[id] = static_cast<size_t>(s);
      ids.push_back(id);
      SubmitPlan(router, id, plan);
    }

    // Same adversarial sweep as the bare-router stress: shuffled rounds,
    // only ~2/3 answered per sweep, resumes racing still-parked sessions.
    Rng sched(131 + static_cast<uint64_t>(shards));
    for (;;) {
      router.Drain();
      std::vector<PendingRound> rounds = router.PendingRounds();
      if (rounds.empty()) break;
      for (size_t i = rounds.size(); i > 1; --i) {
        std::swap(rounds[i - 1],
                  rounds[static_cast<size_t>(sched.Range(
                      0, static_cast<int>(i) - 1))]);
      }
      size_t take = std::max<size_t>(1, (rounds.size() * 2) / 3);
      for (size_t i = 0; i < take; ++i) {
        PendingRound& round = rounds[i];
        QueryOracle* truth = truths[plan_of.at(round.session_id)].get();
        BitVec bits;
        BitSpan span = bits.Prepare(round.questions.size());
        truth->IsAnswerBatch(round.questions, span);
        ASSERT_EQ(
            router.ProvideAnswers(round.session_id, round.round_id, span),
            ProvideOutcome::kResumed);
      }
    }

    ServiceStats stats = router.stats();
    EXPECT_EQ(stats.sessions, kSessions);
    EXPECT_EQ(stats.awaiting_sessions, 0);
    for (int s = 0; s < kSessions; ++s) {
      ASSERT_EQ(SessionFingerprint(router.session(ids[static_cast<size_t>(s)])),
                reference[static_cast<size_t>(s)])
          << "session " << s << " diverged from the synchronous arm at "
          << shards << " shards";
    }
  }
}

TEST(ContinuationStressTest, ResumeDepthIsLinearInRoundsUnderSnapshotResume) {
  // The O(rounds) gate of the snapshot-resume protocol. 256 pending learn
  // sessions on 4 lanes, every answered round a separate suspension: under
  // snapshot resume each answered question must cross the user-boundary
  // replay stage *exactly once* over the session's whole lifetime —
  // replayed == answered, per session, with zero slack. The retired
  // full-prefix protocol re-serves the whole prefix on every resume; a
  // small replay-mode control group certifies the quadratic blowup is real
  // (so this test would actually catch a silent fallback to it).
  constexpr int kSessions = 256;
  constexpr int kLanes = 4;
  const int n = 8;

  std::vector<Query> targets;
  targets.reserve(kSessions);
  for (int s = 0; s < kSessions; ++s) {
    Rng rng(7000 + static_cast<uint64_t>(s));
    RpOptions qopts;
    qopts.num_heads = 1;
    qopts.theta = 2;
    qopts.num_conjunctions = 3;
    qopts.conj_size_max = 4;
    targets.push_back(RandomRolePreserving(n, rng, qopts));
  }

  // Drives `count` pending learn sessions to completion, answering every
  // pending round each sweep, and returns {answered questions, replayed
  // questions, suspensions} summed per session.
  struct DepthResult {
    std::vector<int64_t> answered;
    std::vector<int64_t> replayed;
    std::vector<int64_t> suspensions;
  };
  auto run_fleet = [&](int count, ResumeMode mode) {
    SessionRouter::Options opts;
    opts.threads = kLanes;
    opts.resume_mode = mode;
    SessionRouter router(opts);
    std::vector<std::unique_ptr<QueryOracle>> truths;
    std::vector<SessionRouter::SessionId> ids;
    std::map<SessionRouter::SessionId, size_t> index_of;
    DepthResult result;
    result.answered.assign(static_cast<size_t>(count), 0);
    result.replayed.assign(static_cast<size_t>(count), 0);
    result.suspensions.assign(static_cast<size_t>(count), 0);
    for (int s = 0; s < count; ++s) {
      truths.push_back(
          std::make_unique<QueryOracle>(targets[static_cast<size_t>(s)]));
      SessionRouter::SessionId id = router.OpenPending(n);
      index_of[id] = static_cast<size_t>(s);
      ids.push_back(id);
      EXPECT_TRUE(router.SubmitLearn(id));
    }
    for (;;) {
      router.Drain();
      std::vector<PendingRound> rounds = router.PendingRounds();
      if (rounds.empty()) break;
      for (PendingRound& round : rounds) {
        size_t idx = index_of.at(round.session_id);
        BitVec bits;
        BitSpan span = bits.Prepare(round.questions.size());
        truths[idx]->IsAnswerBatch(round.questions, span);
        result.answered[idx] += static_cast<int64_t>(round.questions.size());
        EXPECT_EQ(router.ProvideAnswers(round.session_id, round.round_id, span),
                  ProvideOutcome::kResumed);
      }
    }
    for (int s = 0; s < count; ++s) {
      size_t idx = static_cast<size_t>(s);
      result.replayed[idx] =
          router.session(ids[idx]).user_questions_replayed();
      result.suspensions[idx] = router.suspensions(ids[idx]);
      EXPECT_EQ(router.status(ids[idx]), SessionStatus::kIdle);
      EXPECT_TRUE(Equivalent(*router.session(ids[idx]).current_query(),
                             targets[idx]));
    }
    return result;
  };

  DepthResult snapshot = run_fleet(kSessions, ResumeMode::kSnapshot);
  int64_t total_suspensions = 0;
  for (int s = 0; s < kSessions; ++s) {
    size_t idx = static_cast<size_t>(s);
    // The linearity contract, exact: every answered question crossed the
    // user-boundary replay stage once — no quadratic prefix re-serving,
    // and nothing ever asked the user twice.
    ASSERT_EQ(snapshot.replayed[idx], snapshot.answered[idx])
        << "session " << s << " re-served its answered prefix";
    EXPECT_GE(snapshot.suspensions[idx], 8)
        << "session " << s << " must suspend per user round, many times";
    total_suspensions += snapshot.suspensions[idx];
  }
  // Deep sessions on average: the fleet's resume depth is what makes the
  // linear bound interesting (≥ 64 rounds mean, so the quadratic protocol
  // would replay ≥ ~32× more than the linear one did).
  EXPECT_GE(total_suspensions, 64 * kSessions);

  // The default protocol beats the linear bound outright: fiber resume
  // feeds answers into the parked frame, so *nothing* is replayed at the
  // user boundary — while the user-visible question stream (and thus the
  // suspension count) stays identical question for question.
  DepthResult fiber = run_fleet(kSessions, ResumeMode::kFiber);
  for (int s = 0; s < kSessions; ++s) {
    size_t idx = static_cast<size_t>(s);
    ASSERT_EQ(fiber.answered[idx], snapshot.answered[idx])
        << "fiber resume changed the user-visible question stream";
    ASSERT_EQ(fiber.suspensions[idx], snapshot.suspensions[idx])
        << "fiber resume changed the round structure";
    ASSERT_EQ(fiber.replayed[idx], 0)
        << "session " << s << " replayed questions despite a parked stack";
  }

  // Control group: the same first sessions under the retired full-prefix
  // protocol really do replay quadratically (identical observables — the
  // differential suites pin that — but a prefix re-serve per resume).
  constexpr int kControlSessions = 8;
  DepthResult replay = run_fleet(kControlSessions, ResumeMode::kReplay);
  for (int s = 0; s < kControlSessions; ++s) {
    size_t idx = static_cast<size_t>(s);
    EXPECT_EQ(replay.answered[idx], snapshot.answered[idx])
        << "both modes must ask the user the exact same questions";
    EXPECT_GE(replay.replayed[idx], 5 * replay.answered[idx])
        << "full-prefix resume should dwarf the linear bound at this depth";
  }
}

}  // namespace
}  // namespace qhorn
