// Flat and nested relations (Defs. 2.1–2.3).

#include "src/relation/relation.h"

#include <gtest/gtest.h>

#include "src/relation/chocolate.h"

namespace qhorn {
namespace {

TEST(FlatRelationTest, AddAndReadRows) {
  FlatRelation r(ChocolateSchema());
  r.AddRow(MakeChocolate(true, false, true, false, "Madagascar"));
  r.AddRow(MakeChocolate(false, true, false, true, "Belgium"));
  EXPECT_EQ(r.size(), 2u);
  EXPECT_EQ(r.rows()[0][4].string_value(), "Madagascar");
  EXPECT_FALSE(r.empty());
}

TEST(FlatRelationDeathTest, ArityMismatchAborts) {
  FlatRelation r(ChocolateSchema());
  EXPECT_DEATH(r.AddRow({Value::Bool(true)}), "arity");
}

TEST(FlatRelationDeathTest, TypeMismatchAborts) {
  FlatRelation r(Schema({{"isDark", ValueType::kBool}}));
  EXPECT_DEATH(r.AddRow({Value::Str("yes")}), "type mismatch");
}

TEST(NestedRelationTest, SingleLevelNesting) {
  NestedRelation boxes = Fig1Boxes();
  EXPECT_EQ(boxes.name(), "Box");
  ASSERT_EQ(boxes.objects().size(), 2u);
  EXPECT_EQ(boxes.objects()[0].name, "Global Ground");
  EXPECT_EQ(boxes.objects()[0].tuples.size(), 3u);
  EXPECT_EQ(boxes.objects()[1].name, "Europe's Finest");
}

TEST(NestedRelationDeathTest, SchemaMismatchAborts) {
  NestedRelation boxes("Box", ChocolateSchema());
  NestedObject bad;
  bad.name = "bad";
  bad.tuples = FlatRelation(Schema({{"x", ValueType::kInt}}));
  EXPECT_DEATH(boxes.AddObject(std::move(bad)), "embedded schema");
}

TEST(NestedRelationTest, ToStringListsObjects) {
  std::string text = Fig1Boxes().ToString();
  EXPECT_NE(text.find("Global Ground"), std::string::npos);
  EXPECT_NE(text.find("Madagascar"), std::string::npos);
}

}  // namespace
}  // namespace qhorn
