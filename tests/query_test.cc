// Query model and evaluation semantics (§2.1): universal Horn expressions
// with guarantee clauses, existential conjunctions, Horn closure.

#include "src/core/query.h"

#include <gtest/gtest.h>

#include "src/bool/tuple_set.h"
#include "src/util/rng.h"

namespace qhorn {
namespace {

TEST(QueryTest, PaperQueryOneOnChocolateBoxes) {
  // Query (1): ∀c(p1) ∧ ∃c(p2 ∧ p3). Boolean form over x1..x3.
  Query q(3);
  q.AddUniversal(0, 0);                     // ∀x1
  q.AddExistential(VarBit(1) | VarBit(2));  // ∃x2x3

  // An all-dark box with a filled Madagascar chocolate is an answer.
  TupleSet good_box = TupleSet::Parse({"111", "100"});
  EXPECT_TRUE(q.Evaluate(good_box));

  // Fig. 1's S1 = {111, 000, 110} has a non-dark chocolate (000); S2 =
  // {100, 110} lacks a filled Madagascar chocolate. Both are non-answers.
  EXPECT_FALSE(q.Evaluate(TupleSet::Parse({"111", "000", "110"})));
  EXPECT_FALSE(q.Evaluate(TupleSet::Parse({"100", "110"})));
}

TEST(QueryTest, UniversalHornViolation) {
  Query q = Query::Parse("∀x1x2→x3");
  EXPECT_TRUE(q.Evaluate(TupleSet::Parse({"111"})));
  EXPECT_TRUE(q.Evaluate(TupleSet::Parse({"111", "100"})));  // body not full
  EXPECT_FALSE(q.Evaluate(TupleSet::Parse({"111", "110"})));  // violation
}

TEST(QueryTest, GuaranteeClauseRequiresPositiveInstance) {
  Query q = Query::Parse("∀x1");
  // The empty-ish box: a tuple with x1 false violates ∀x1 outright.
  EXPECT_FALSE(q.Evaluate(TupleSet::Parse({"0"})));
  // A box where x1 never appears true fails the guarantee ∃x1.
  TupleSet no_positive;  // empty set of tuples
  EXPECT_FALSE(q.Evaluate(no_positive));
  // Footnote 1: with guarantees relaxed, the empty set satisfies ∀x1.
  EvalOptions relaxed;
  relaxed.require_guarantees = false;
  EXPECT_TRUE(q.Evaluate(no_positive, relaxed));
}

TEST(QueryTest, GuaranteeOfHornNeedsBodyAndHeadTogether) {
  Query q = Query::Parse("∀x1x2→x3");
  // Violation-free but no tuple has x1,x2,x3 all true → guarantee fails.
  EXPECT_FALSE(q.Evaluate(TupleSet::Parse({"101", "011"})));
  EXPECT_TRUE(q.Evaluate(TupleSet::Parse({"101", "011", "111"})));
  EvalOptions relaxed;
  relaxed.require_guarantees = false;
  EXPECT_TRUE(q.Evaluate(TupleSet::Parse({"101", "011"}), relaxed));
}

TEST(QueryTest, ExistentialConjunctionSemantics) {
  Query q = Query::Parse("∃x1x3");
  EXPECT_TRUE(q.Evaluate(TupleSet::Parse({"101"})));
  EXPECT_TRUE(q.Evaluate(TupleSet::Parse({"010", "111"})));
  EXPECT_FALSE(q.Evaluate(TupleSet::Parse({"100", "001", "011"})));
}

TEST(QueryTest, EmptyQueryAcceptsEverything) {
  Query q(3);
  EXPECT_TRUE(q.Evaluate(TupleSet()));
  EXPECT_TRUE(q.Evaluate(TupleSet::Parse({"000"})));
}

TEST(QueryTest, ViolatesUniversal) {
  Query q = Query::Parse("∀x1x2→x6 ∀x3x4→x5", 6);
  EXPECT_TRUE(q.ViolatesUniversal(ParseTuple("111110")));   // x6 false
  EXPECT_TRUE(q.ViolatesUniversal(ParseTuple("111101")));   // x5 false
  EXPECT_FALSE(q.ViolatesUniversal(ParseTuple("111111")));
  EXPECT_FALSE(q.ViolatesUniversal(ParseTuple("101011")));  // bodies broken
}

TEST(QueryTest, HornClosure) {
  Query q = Query::Parse("∀x1→x2 ∀x2x3→x4", 5);
  EXPECT_EQ(q.HornClosure(VarBit(0)), VarBit(0) | VarBit(1));
  EXPECT_EQ(q.HornClosure(VarBit(0) | VarBit(2)),
            VarBit(0) | VarBit(1) | VarBit(2) | VarBit(3));
  EXPECT_EQ(q.HornClosure(VarBit(4)), VarBit(4));
}

TEST(QueryTest, HornClosureWithBodylessHead) {
  Query q = Query::Parse("∀x1 ∃x2", 2);
  // ∀x1 forces x1 into every closure.
  EXPECT_EQ(q.HornClosure(VarBit(1)), VarBit(0) | VarBit(1));
}

TEST(QueryTest, HornClosureMatchesFixpointReference) {
  // The worklist closure must agree with the naive fixpoint re-scan on
  // random queries, including long chains and the k > 64 fallback.
  auto reference = [](const Query& q, VarSet vars) {
    bool changed = true;
    while (changed) {
      changed = false;
      for (const UniversalHorn& u : q.universal()) {
        if (IsSubset(u.body, vars) && !HasVar(vars, u.head)) {
          vars |= VarBit(u.head);
          changed = true;
        }
      }
    }
    return vars;
  };

  // Chain ∀x1→x2, ∀x2→x3, … in worst-case (reverse) discovery order.
  {
    Query chain(16);
    for (int i = 14; i >= 0; --i) chain.AddUniversal(VarBit(i), i + 1);
    EXPECT_EQ(chain.HornClosure(VarBit(0)), AllTrue(16));
    EXPECT_EQ(chain.HornClosure(VarBit(0)), reference(chain, VarBit(0)));
  }

  Rng rng(2024);
  for (int trial = 0; trial < 50; ++trial) {
    int n = 2 + static_cast<int>(rng.Below(63));
    // More than 64 expressions on some trials exercises the fallback.
    int k = 1 + static_cast<int>(rng.Below(100));
    Query q(n);
    for (int i = 0; i < k; ++i) {
      int head = static_cast<int>(rng.Below(static_cast<uint64_t>(n)));
      VarSet body = rng.Next() & AllTrue(n) & ~VarBit(head);
      q.AddUniversal(body & rng.Next(), head);  // sparser bodies
    }
    for (int probe = 0; probe < 10; ++probe) {
      VarSet vars = rng.Next() & AllTrue(n);
      ASSERT_EQ(q.HornClosure(vars), reference(q, vars))
          << "n=" << n << " k=" << k;
    }
  }
}

TEST(QueryTest, SizeAndHeads) {
  Query q = Query::Parse("∀x1x2→x4 ∃x3 ∃x1x2x3", 4);
  EXPECT_EQ(q.size_k(), 3);
  EXPECT_EQ(q.UniversalHeadVars(), VarBit(3));
  EXPECT_EQ(q.MentionedVars(), AllTrue(4));
}

TEST(QueryTest, ToStringShorthand) {
  Query q(5);
  q.AddUniversal(VarBit(0) | VarBit(1), 2);
  q.AddUniversal(0, 3);
  q.AddExistential(VarBit(4));
  EXPECT_EQ(q.ToString(), "∀x1x2→x3 ∀x4 ∃x5");
}

TEST(Qhorn1StructureTest, LowersToQuery) {
  Qhorn1Structure s(6);
  // ∀x1x2→x4 ∃x1x2→x5 ∃x3→x6 (Fig. 2's example).
  Qhorn1Part shared;
  shared.body = VarBit(0) | VarBit(1);
  shared.universal_heads = VarBit(3);
  shared.existential_heads = VarBit(4);
  s.AddPart(shared);
  Qhorn1Part other;
  other.body = VarBit(2);
  other.existential_heads = VarBit(5);
  s.AddPart(other);

  EXPECT_TRUE(s.CoversAllVars());
  Query q = s.ToQuery();
  ASSERT_EQ(q.universal().size(), 1u);
  EXPECT_EQ(q.universal()[0].body, VarBit(0) | VarBit(1));
  EXPECT_EQ(q.universal()[0].head, 3);
  ASSERT_EQ(q.existential().size(), 2u);
  EXPECT_EQ(q.existential()[0].vars, VarBit(0) | VarBit(1) | VarBit(4));
  EXPECT_EQ(q.existential()[1].vars, VarBit(2) | VarBit(5));
  EXPECT_EQ(s.ToString(), "∀x1x2→x4 ∃x1x2→x5 ∃x3→x6");
}

TEST(Qhorn1StructureTest, CoverageDetection) {
  Qhorn1Structure s(3);
  Qhorn1Part p;
  p.existential_heads = VarBit(0);
  s.AddPart(p);
  EXPECT_FALSE(s.CoversAllVars());
}

}  // namespace
}  // namespace qhorn
