// Lemma 3.4: pair-head queries and the Θ(n²/c²) width-limited learner.

#include "src/lower_bounds/pairhead_class.h"

#include <gtest/gtest.h>

#include "src/oracle/adversary.h"

namespace qhorn {
namespace {

TEST(PairHeadInstanceTest, Semantics) {
  // n=4, heads x2,x4: conjunctions {x1,x3,x2} and {x1,x3,x4}.
  Query q = PairHeadInstance(4, 1, 3);
  // T2 and T4 together satisfy both conjunctions.
  EXPECT_TRUE(q.Evaluate(TupleSet::Parse({"1011", "1110"})));
  // A single class-2 tuple never does (the paper's Class-2 analysis).
  EXPECT_FALSE(q.Evaluate(TupleSet::Parse({"1011"})));
  // A wrong pair fails.
  EXPECT_FALSE(q.Evaluate(TupleSet::Parse({"0111", "1110"})));
  // The all-true tuple alone satisfies everything (Class 1).
  EXPECT_TRUE(q.Evaluate(TupleSet::Parse({"1111"})));
}

TEST(PairHeadClassTest, HasNChoose2Members) {
  EXPECT_EQ(PairHeadClass(6).size(), 15u);
  EXPECT_EQ(PairHeadClass(10).size(), 45u);
}

class PairHeadLearnerTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(PairHeadLearnerTest, IdentifiesEveryPair) {
  auto [n, c] = GetParam();
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      QueryOracle oracle(PairHeadInstance(n, i, j));
      PairHeadResult r = LearnPairHeads(n, c, &oracle);
      int lo = std::min(r.head_i, r.head_j);
      int hi = std::max(r.head_i, r.head_j);
      EXPECT_EQ(lo, i);
      EXPECT_EQ(hi, j);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, PairHeadLearnerTest,
                         ::testing::Combine(::testing::Values(5, 8, 12),
                                            ::testing::Values(2, 4, 6)));

TEST(PairHeadLearnerTest, AdversaryForcesQuadraticOverC2) {
  // Against the adversary, the learner pays ≈ n²/c² batch questions.
  for (int n : {8, 12, 16}) {
    for (int c : {2, 4}) {
      AdversaryOracle adversary(PairHeadClass(n));
      PairHeadResult r = LearnPairHeads(n, c, &adversary);
      double floor = 0.2 * (static_cast<double>(n) * n) / (c * c);
      EXPECT_GE(static_cast<double>(r.questions), floor)
          << "n=" << n << " c=" << c;
      EXPECT_GE(r.head_i, 0);
    }
  }
}

TEST(PairHeadLearnerTest, QuestionWidthRespectsC) {
  int n = 10;
  int c = 4;
  struct WidthCheck : MembershipOracle {
    MembershipOracle* inner;
    int max_width = 0;
    bool IsAnswer(const TupleSet& q) override {
      max_width = std::max(max_width, static_cast<int>(q.size()));
      return inner->IsAnswer(q);
    }
  } width;
  QueryOracle oracle(PairHeadInstance(n, 2, 7));
  width.inner = &oracle;
  LearnPairHeads(n, c, &width);
  EXPECT_LE(width.max_width, c);
}

}  // namespace
}  // namespace qhorn
