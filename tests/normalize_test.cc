// Equivalence rules R1/R2/R3 (§2.1.1), canonical forms and Proposition 4.1
// (canonical equality ⟺ semantic equivalence), validated against
// brute-force enumeration of every object.

#include "src/core/normalize.h"

#include <gtest/gtest.h>

#include "src/core/enumerate.h"
#include "src/core/random_query.h"
#include "src/util/rng.h"

namespace qhorn {
namespace {

TEST(AntichainTest, MinimalKeepsSubsetFreeFamily) {
  std::vector<VarSet> sets = {0b111, 0b011, 0b101, 0b001};
  std::vector<VarSet> minimal = MinimalAntichain(sets);
  // 001 ⊆ 011, 101, 111 → only 001 survives... plus any incomparable set.
  ASSERT_EQ(minimal.size(), 1u);
  EXPECT_EQ(minimal[0], 0b001u);
}

TEST(AntichainTest, MinimalKeepsIncomparables) {
  std::vector<VarSet> sets = {0b011, 0b101, 0b111};
  std::vector<VarSet> minimal = MinimalAntichain(sets);
  EXPECT_EQ(minimal, (std::vector<VarSet>{0b011, 0b101}));
}

TEST(AntichainTest, MaximalKeepsSupersetFreeFamily) {
  std::vector<VarSet> sets = {0b001, 0b011, 0b100};
  std::vector<VarSet> maximal = MaximalAntichain(sets);
  EXPECT_EQ(maximal, (std::vector<VarSet>{0b100, 0b011}));
}

TEST(AntichainTest, EmptyBodyDominatesEverything) {
  std::vector<VarSet> minimal = MinimalAntichain({0b01, 0b10, 0});
  ASSERT_EQ(minimal.size(), 1u);
  EXPECT_EQ(minimal[0], 0u);
}

TEST(RuleR1Test, ConjunctionDominatesSubsets) {
  // ∃x1x2x3 ∃x1x2 ∃x2x3 ≡ ∃x1x2x3 (the paper's R1 example).
  Query lhs = Query::Parse("∃x1x2x3 ∃x1x2 ∃x2x3");
  Query rhs = Query::Parse("∃x1x2x3");
  EXPECT_TRUE(Equivalent(lhs, rhs));
  EXPECT_TRUE(BruteForceEquivalent(lhs, rhs));
}

TEST(RuleR2Test, SmallerBodyDominatesButGuaranteesRemain) {
  // ∀x1x2x3→x4 ∀x1x2→x4 ∀x1→x4 ≡ ∀x1→x4 ∃x1x2x3→x4 (paper's R2 example,
  // with the dominated expressions surviving as their guarantee clause).
  Query lhs = Query::Parse("∀x1x2x3→x4 ∀x1x2→x4 ∀x1→x4");
  Query rhs = Query::Parse("∀x1→x4 ∃x1x2x3→x4");
  EXPECT_TRUE(Equivalent(lhs, rhs));
  EXPECT_TRUE(BruteForceEquivalent(lhs, rhs));
  // And the dominated Horn expressions are *not* simply erasable.
  Query wrong = Query::Parse("∀x1→x4", 4);
  EXPECT_FALSE(Equivalent(lhs, wrong));
  EXPECT_FALSE(BruteForceEquivalent(lhs, wrong));
}

TEST(RuleR3Test, ConjunctionsAbsorbImpliedHeads) {
  // ∀x1→x3 ∃x1x2 ≡ ∀x1→x3 ∃x1x2x3 (R3 with a 3rd variable as head).
  Query lhs = Query::Parse("∀x1→x3 ∃x1x2", 3);
  Query rhs = Query::Parse("∀x1→x3 ∃x1x2x3", 3);
  EXPECT_TRUE(Equivalent(lhs, rhs));
  EXPECT_TRUE(BruteForceEquivalent(lhs, rhs));
}

TEST(CanonicalizeTest, PaperSectionThreeTwoExample) {
  // §3.2.2: the target query (2) has these dominant conjunctions
  // (guarantee clauses included): ∃x1x4x5 ∃x1x2x3x6 ∃x2x3x4x5 ∃x1x2x5x6
  // ∃x2x3x5x6.
  Query q = Query::Parse(
      "∀x1x4→x5 ∀x3x4→x5 ∀x1x2→x6 ∃x1x2x3 ∃x2x3x4 ∃x1x2x5 ∃x2x3x5x6");
  CanonicalForm form = Canonicalize(q);
  std::vector<VarSet> expected = {
      ParseTuple("100110"),  // ∃x1x4x5 (guarantee of ∀x1x4→x5)
      ParseTuple("111001"),  // ∃x1x2x3x6
      ParseTuple("011110"),  // ∃x2x3x4x5
      ParseTuple("110011"),  // ∃x1x2x5x6
      ParseTuple("011011"),  // ∃x2x3x5x6
  };
  std::sort(expected.begin(), expected.end(), [](VarSet a, VarSet b) {
    return Popcount(a) != Popcount(b) ? Popcount(a) < Popcount(b) : a < b;
  });
  EXPECT_EQ(form.existential, expected);
  // Universal side: x5 keeps both incomparable bodies, x6 keeps one.
  ASSERT_EQ(form.universal.size(), 2u);
  EXPECT_EQ(form.universal.at(4).size(), 2u);
  EXPECT_EQ(form.universal.at(5).size(), 1u);
}

TEST(CanonicalizeTest, NormalizeIsIdempotent) {
  Query q = Query::Parse("∀x1x2x3→x4 ∀x1→x4 ∃x1 ∃x1x2");
  Query once = Normalize(q);
  Query twice = Normalize(once);
  EXPECT_EQ(Canonicalize(once), Canonicalize(twice));
  EXPECT_TRUE(Equivalent(q, once));
}

TEST(BruteForceTest, FindsWitnessForInequivalentQueries) {
  Query a = Query::Parse("∀x1", 2);
  Query b = Query::Parse("∃x1", 2);
  TupleSet witness;
  ASSERT_TRUE(FindDistinguishingObject(a, b, EvalOptions(), &witness));
  EXPECT_NE(a.Evaluate(witness), b.Evaluate(witness));
}

// Proposition 4.1 — canonical equality must coincide with brute-force
// semantic equivalence across every pair of enumerated role-preserving
// queries on two variables.
TEST(Proposition41Test, ExhaustivePairsTwoVariables) {
  std::vector<Query> queries = EnumerateRolePreserving(2);
  for (size_t i = 0; i < queries.size(); ++i) {
    for (size_t j = 0; j < queries.size(); ++j) {
      bool canonical_eq = Equivalent(queries[i], queries[j]);
      bool semantic_eq = BruteForceEquivalent(queries[i], queries[j]);
      EXPECT_EQ(canonical_eq, semantic_eq)
          << "qi=" << queries[i].ToString() << " qj=" << queries[j].ToString();
    }
  }
}

// Same on random role-preserving queries over three variables.
class Proposition41RandomTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(Proposition41RandomTest, CanonicalMatchesBruteForce) {
  Rng rng(GetParam());
  RpOptions opts;
  opts.num_heads = static_cast<int>(rng.Range(0, 1));
  opts.theta = 1;
  opts.body_size = 2;
  opts.num_conjunctions = static_cast<int>(rng.Range(1, 3));
  Query a = RandomRolePreserving(3, rng, opts);
  Query b = RandomRolePreserving(3, rng, opts);
  EXPECT_EQ(Equivalent(a, b), BruteForceEquivalent(a, b))
      << "a=" << a.ToString() << " b=" << b.ToString();
  EXPECT_TRUE(Equivalent(a, Normalize(a)));
  EXPECT_TRUE(BruteForceEquivalent(a, Normalize(a)));
}

INSTANTIATE_TEST_SUITE_P(Seeds, Proposition41RandomTest,
                         ::testing::Range<uint64_t>(0, 40));

}  // namespace
}  // namespace qhorn
