// Verification (§4): the verifier accepts a query iff the user's intended
// query is semantically equivalent — Theorem 4.2, tested exhaustively over
// every pair of canonical role-preserving queries on 2 and 3 variables
// (the n = 2 instance is the paper's Fig. 8 matrix).

#include "src/verify/verifier.h"

#include <gtest/gtest.h>

#include "src/core/enumerate.h"
#include "src/core/normalize.h"
#include "src/core/random_query.h"
#include "src/util/rng.h"

namespace qhorn {
namespace {

TEST(VerifierTest, AcceptsTheIdenticalQuery) {
  Query q = Query::Parse(
      "∀x1x4→x5 ∀x1x2→x6 ∀x3x4→x5 ∃x1x2x3 ∃x2x3x4 ∃x1x2x5 ∃x2x3x5x6");
  QueryOracle user(q);
  VerificationReport report = VerifyQuery(q, &user);
  EXPECT_TRUE(report.accepted);
  EXPECT_TRUE(report.discrepancies.empty());
}

TEST(VerifierTest, AcceptsAnEquivalentRewriting) {
  // R2/R3-rewritten variants must also pass.
  Query given = Query::Parse("∀x1→x4 ∃x1x2x3→x4");
  Query intended = Query::Parse("∀x1x2x3→x4 ∀x1x2→x4 ∀x1→x4");
  QueryOracle user(intended);
  EXPECT_TRUE(VerifyQuery(given, &user).accepted);
}

TEST(VerifierTest, DetectsAMissingConjunction) {
  Query given = Query::Parse("∃x1x2", 3);
  QueryOracle user(Query::Parse("∃x1x2 ∃x3", 3));
  VerificationReport report = VerifyQuery(given, &user);
  EXPECT_FALSE(report.accepted);
}

TEST(VerifierTest, DetectsAnExtraConjunction) {
  Query given = Query::Parse("∃x1x2 ∃x3", 3);
  QueryOracle user(Query::Parse("∃x1x2", 3));
  EXPECT_FALSE(VerifyQuery(given, &user).accepted);
}

TEST(VerifierTest, DetectsAMissedHeadVariableViaA4) {
  Query given = Query::Parse("∃x1 ∃x2", 2);
  QueryOracle user(Query::Parse("∀x1 ∃x2", 2));
  VerificationReport report = VerifyQuery(given, &user);
  ASSERT_FALSE(report.accepted);
  bool a4_fired = false;
  for (const Discrepancy& d : report.discrepancies) {
    a4_fired |= (d.family == QuestionFamily::kA4);
  }
  EXPECT_TRUE(a4_fired);
}

TEST(VerifierTest, DetectsAMissingIncomparableBodyViaA3) {
  // The paper's own A3 scenario: the intended query gives x5 another body
  // x2x4 ⊆ {x2,x3,x4} that is incomparable with x3x4 and invisible to
  // A1/N1/A2/N2/A4 (see §4.2).
  Query given = Query::Parse(
      "∀x1x4→x5 ∀x1x2→x6 ∀x3x4→x5 ∃x1x2x3 ∃x2x3x4 ∃x1x2x5 ∃x2x3x5x6");
  Query intended = Query::Parse(
      "∀x1x4→x5 ∀x1x2→x6 ∀x3x4→x5 ∀x2x4→x5 "
      "∃x1x2x3 ∃x2x3x4 ∃x1x2x5 ∃x2x3x5x6");
  QueryOracle user(intended);
  VerificationReport report = VerifyQuery(given, &user);
  ASSERT_FALSE(report.accepted);
  bool a3_fired = false;
  for (const Discrepancy& d : report.discrepancies) {
    a3_fired |= (d.family == QuestionFamily::kA3);
  }
  EXPECT_TRUE(a3_fired) << BuildVerificationSet(given).ToString();
}

TEST(VerifierTest, DetectsBodyGrowthViaN2) {
  // The intended body x1x2 strictly contains qg's x1 (Lemma 4.5): qg's
  // distinguishing tuple no longer violates the intended expression, so
  // the N2 question flips from non-answer to answer.
  Query given = Query::Parse("∀x1→x3 ∃x2", 3);
  QueryOracle user(Query::Parse("∀x1x2→x3", 3));
  VerificationReport report = VerifyQuery(given, &user);
  ASSERT_FALSE(report.accepted);
  bool n2_fired = false;
  for (const Discrepancy& d : report.discrepancies) {
    n2_fired |= (d.family == QuestionFamily::kN2);
  }
  EXPECT_TRUE(n2_fired);
}

TEST(VerifierTest, DetectsBodyShrinkageViaA2) {
  // The intended body x1 is strictly inside qg's x1x2 (Lemma 4.4): some
  // child of qg's distinguishing tuple still violates the intended
  // expression, so the A2 question flips from answer to non-answer.
  Query given = Query::Parse("∀x1x2→x3", 3);
  QueryOracle user(Query::Parse("∀x1→x3 ∃x2", 3));
  VerificationReport report = VerifyQuery(given, &user);
  ASSERT_FALSE(report.accepted);
  bool a2_fired = false;
  for (const Discrepancy& d : report.discrepancies) {
    a2_fired |= (d.family == QuestionFamily::kA2);
  }
  EXPECT_TRUE(a2_fired);
}

// Empirical Theorem 4.2: over every ordered pair (intended, given) of
// canonical role-preserving queries, verification accepts iff the queries
// are semantically equivalent. n = 2 is exactly the universe of Fig. 7/8.
class VerifierCompletenessTest : public ::testing::TestWithParam<int> {};

TEST_P(VerifierCompletenessTest, AcceptIffEquivalent) {
  int n = GetParam();
  std::vector<Query> queries = EnumerateRolePreserving(n);
  ASSERT_FALSE(queries.empty());
  if (n == 2) {
    // The paper counts exactly 7 role-preserving queries on two variables.
    EXPECT_EQ(queries.size(), 7u);
  }
  for (const Query& given : queries) {
    VerificationSet set = BuildVerificationSet(given);
    for (const Query& intended : queries) {
      QueryOracle user(intended);
      VerificationReport report = RunVerification(set, &user);
      bool equivalent = Equivalent(given, intended);
      EXPECT_EQ(report.accepted, equivalent)
          << "given:    " << given.ToString()
          << "\nintended: " << intended.ToString() << "\n"
          << set.ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(SmallN, VerifierCompletenessTest,
                         ::testing::Values(1, 2, 3));

// Randomized soundness/completeness at larger n: mutate a query and verify
// the mutation is detected; verify the original passes.
class VerifierRandomTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(VerifierRandomTest, RandomPairs) {
  Rng rng(GetParam());
  RpOptions opts;
  opts.num_heads = static_cast<int>(rng.Range(0, 2));
  opts.theta = static_cast<int>(rng.Range(1, 2));
  opts.num_conjunctions = static_cast<int>(rng.Range(1, 3));
  Query a = RandomRolePreserving(5, rng, opts);
  Query b = RandomRolePreserving(5, rng, opts);

  QueryOracle user_a(a);
  EXPECT_TRUE(VerifyQuery(a, &user_a).accepted);

  QueryOracle user_b(b);
  VerificationReport cross = VerifyQuery(a, &user_b);
  EXPECT_EQ(cross.accepted, Equivalent(a, b))
      << "a: " << a.ToString() << "\nb: " << b.ToString();
}

INSTANTIATE_TEST_SUITE_P(Seeds, VerifierRandomTest,
                         ::testing::Range<uint64_t>(0, 60));

}  // namespace
}  // namespace qhorn
