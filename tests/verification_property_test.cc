// Property tests for verification: every single-edit mutation of a query
// must be caught by its verification set (and vice versa), across random
// bases and seeds — the randomized counterpart of the exhaustive
// Theorem 4.2 check in verifier_test.cc.

#include <gtest/gtest.h>

#include "src/core/classify.h"
#include "src/core/normalize.h"
#include "src/core/random_query.h"
#include "src/util/rng.h"
#include "src/verify/verifier.h"

namespace qhorn {
namespace {

constexpr int kN = 7;

Query RandomBase(Rng& rng) {
  RpOptions opts;
  opts.num_heads = static_cast<int>(rng.Range(1, 2));
  opts.theta = 1;
  opts.body_size = 2;
  opts.num_conjunctions = static_cast<int>(rng.Range(1, 3));
  opts.conj_size_max = 4;
  return RandomRolePreserving(kN, rng, opts);
}

// Applies one structural edit; returns false if the edit is impossible on
// this base or leaves the query outside role-preserving qhorn.
bool Mutate(const Query& base, int kind, Rng& rng, Query* out) {
  Query q(base.n());
  VarSet heads = base.UniversalHeadVars();
  switch (kind) {
    case 0: {  // grow a conjunction by one variable
      if (base.existential().empty()) return false;
      size_t i = rng.Below(base.existential().size());
      VarSet vars = base.existential()[i].vars;
      VarSet candidates = AllTrue(base.n()) & ~vars;
      if (candidates == 0) return false;
      for (const UniversalHorn& u : base.universal()) {
        q.AddUniversal(u.body, u.head);
      }
      for (size_t j = 0; j < base.existential().size(); ++j) {
        VarSet v = base.existential()[j].vars;
        if (j == i) v |= candidates & (~candidates + 1);
        q.AddExistential(v);
      }
      break;
    }
    case 1: {  // shrink a conjunction of size ≥ 2
      int found = -1;
      for (size_t j = 0; j < base.existential().size(); ++j) {
        if (Popcount(base.existential()[j].vars) >= 2) {
          found = static_cast<int>(j);
          break;
        }
      }
      if (found < 0) return false;
      for (const UniversalHorn& u : base.universal()) {
        q.AddUniversal(u.body, u.head);
      }
      for (size_t j = 0; j < base.existential().size(); ++j) {
        VarSet v = base.existential()[j].vars;
        if (static_cast<int>(j) == found) v &= v - 1;  // drop lowest var
        q.AddExistential(v);
      }
      break;
    }
    case 2: {  // add a brand-new universal Horn expression
      VarSet non_heads = AllTrue(base.n()) & ~heads;
      std::vector<int> pool = VarsOf(non_heads);
      if (pool.size() < 2) return false;
      int head = pool[0];
      int body = pool[1];
      for (const UniversalHorn& u : base.universal()) {
        if (u.head == head || HasVar(u.body, head)) return false;
        q.AddUniversal(u.body, u.head);
      }
      q.AddUniversal(VarBit(body), head);
      for (const ExistentialConj& e : base.existential()) {
        q.AddExistential(e.vars);
      }
      break;
    }
    case 3: {  // drop a universal Horn expression
      if (base.universal().empty()) return false;
      size_t skip = rng.Below(base.universal().size());
      for (size_t j = 0; j < base.universal().size(); ++j) {
        if (j != skip) q.AddUniversal(base.universal()[j].body,
                                      base.universal()[j].head);
      }
      for (const ExistentialConj& e : base.existential()) {
        q.AddExistential(e.vars);
      }
      if (q.size_k() == 0) return false;
      break;
    }
    case 4: {  // grow a universal body by one variable
      int found = -1;
      VarSet candidates = 0;
      for (size_t j = 0; j < base.universal().size(); ++j) {
        VarSet extra = AllTrue(base.n()) & ~heads &
                       ~base.universal()[j].body;
        if (extra != 0) {
          found = static_cast<int>(j);
          candidates = extra;
          break;
        }
      }
      if (found < 0) return false;
      for (size_t j = 0; j < base.universal().size(); ++j) {
        VarSet body = base.universal()[j].body;
        if (static_cast<int>(j) == found) {
          body |= candidates & (~candidates + 1);
        }
        q.AddUniversal(body, base.universal()[j].head);
      }
      for (const ExistentialConj& e : base.existential()) {
        q.AddExistential(e.vars);
      }
      break;
    }
    default:
      return false;
  }
  if (!IsRolePreserving(q)) return false;
  *out = q;
  return true;
}

class VerificationPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, uint64_t>> {};

TEST_P(VerificationPropertyTest, SingleEditsBehaveLikeEquivalence) {
  auto [kind, seed] = GetParam();
  Rng rng(seed * 5 + static_cast<uint64_t>(kind));
  Query base = RandomBase(rng);
  Query mutated;
  if (!Mutate(base, kind, rng, &mutated)) {
    GTEST_SKIP() << "edit not applicable to this base";
  }
  bool equivalent = Equivalent(base, mutated);

  // The mutated query plays the intended one against base's set…
  QueryOracle intends_mutated(mutated);
  EXPECT_EQ(VerifyQuery(base, &intends_mutated).accepted, equivalent)
      << "base: " << base.ToString() << "\nmutated: " << mutated.ToString();

  // …and the other way around.
  QueryOracle intends_base(base);
  EXPECT_EQ(VerifyQuery(mutated, &intends_base).accepted, equivalent)
      << "base: " << base.ToString() << "\nmutated: " << mutated.ToString();
}

INSTANTIATE_TEST_SUITE_P(EditsBySeed, VerificationPropertyTest,
                         ::testing::Combine(::testing::Range(0, 5),
                                            ::testing::Range<uint64_t>(0,
                                                                       15)));

}  // namespace
}  // namespace qhorn
