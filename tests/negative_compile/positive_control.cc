// Positive control for the negative-compile pair: the same shapes as
// requires_violation.cc and guarded_by_violation.cc with the locking
// done right. This file MUST COMPILE under clang with -Wthread-safety
// -Werror=thread-safety — if it ever fails, the negative tests are
// failing for the wrong reason (broken include path, miswired flags)
// rather than proving the analysis works.

#include "src/util/checked_mutex.h"

namespace qhorn_negative_compile {

qhorn::Mutex fixture_mu("positive-control-fixture", qhorn::LockRank::kMemo);
int counter QHORN_GUARDED_BY(fixture_mu) = 0;

void MustHoldMu() QHORN_REQUIRES(fixture_mu) { ++counter; }

void CallsWhileHolding() {
  qhorn::MutexLock lock(&fixture_mu);
  MustHoldMu();  // OK: fixture_mu is held
}

class Counter {
 public:
  void GuardedIncrement() {
    qhorn::MutexLock lock(&mutex_);
    ++value_;
  }

  int Get() {
    qhorn::MutexLock lock(&mutex_);
    return value_;
  }

 private:
  qhorn::Mutex mutex_{"positive-control-counter", qhorn::LockRank::kMemo};
  int value_ QHORN_GUARDED_BY(mutex_) = 0;
};

}  // namespace qhorn_negative_compile

int main() {
  qhorn_negative_compile::CallsWhileHolding();
  qhorn_negative_compile::Counter counter;
  counter.GuardedIncrement();
  return counter.Get();
}
