// Negative-compile fixture: writing a QHORN_GUARDED_BY(mutex_) field
// without holding the mutex. Under clang with -Wthread-safety
// -Werror=thread-safety this file MUST FAIL to compile (ctest runs it
// with WILL_FAIL). Under gcc the attributes expand to nothing and the
// file is valid C++ (the non-clang lane compiles it -fsyntax-only as a
// syntax control).
//
// Expected clang diagnostic:
//   writing variable 'value_' requires holding mutex 'mutex_' exclusively
//   [-Werror,-Wthread-safety-analysis]

#include "src/util/checked_mutex.h"

namespace qhorn_negative_compile {

class Counter {
 public:
  void GuardedIncrement() {
    qhorn::MutexLock lock(&mutex_);
    ++value_;  // fine: mutex_ is held
  }

  void UnguardedIncrement() {
    ++value_;  // BAD: mutex_ is not held
  }

 private:
  qhorn::Mutex mutex_{"negative-compile-counter", qhorn::LockRank::kMemo};
  int value_ QHORN_GUARDED_BY(mutex_) = 0;
};

}  // namespace qhorn_negative_compile

int main() {
  qhorn_negative_compile::Counter counter;
  counter.GuardedIncrement();
  counter.UnguardedIncrement();
  return 0;
}
