// Negative-compile fixture: calling a QHORN_REQUIRES(mu) function without
// holding mu. Under clang with -Wthread-safety -Werror=thread-safety this
// file MUST FAIL to compile (ctest runs it with WILL_FAIL) — that failure
// is the proof the annotations are load-bearing, not decorative. Under
// gcc the attributes expand to nothing and the file is valid C++ (the
// non-clang lane compiles it -fsyntax-only as a syntax control).
//
// Expected clang diagnostic:
//   calling function 'MustHoldMu' requires holding mutex 'fixture_mu'
//   [-Werror,-Wthread-safety-analysis]

#include "src/util/checked_mutex.h"

namespace qhorn_negative_compile {

qhorn::Mutex fixture_mu("negative-compile-fixture", qhorn::LockRank::kMemo);
int counter = 0;

void MustHoldMu() QHORN_REQUIRES(fixture_mu) { ++counter; }

void CallsWithoutHolding() {
  MustHoldMu();  // BAD: fixture_mu is not held here
}

}  // namespace qhorn_negative_compile

int main() {
  qhorn_negative_compile::CallsWithoutHolding();
  return 0;
}
