// Exhaustive enumerators: antichains, set partitions, canonical
// role-preserving queries (the paper's "7 queries on two variables"),
// qhorn-1 counting against the Bell-number bound (§2.1.3).

#include "src/core/enumerate.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "src/core/classify.h"
#include "src/core/counting.h"
#include "src/core/normalize.h"

namespace qhorn {
namespace {

TEST(AntichainsTest, CountsMatchDedekind) {
  // Numbers of antichains of the Boolean lattice on m elements (Dedekind
  // numbers): m=0 → 2, m=1 → 3, m=2 → 6, m=3 → 20.
  EXPECT_EQ(AntichainsOf(0).size(), 2u);
  EXPECT_EQ(AntichainsOf(VarBit(0)).size(), 3u);
  EXPECT_EQ(AntichainsOf(VarBit(0) | VarBit(1)).size(), 6u);
  EXPECT_EQ(AntichainsOf(VarBit(0) | VarBit(1) | VarBit(2)).size(), 20u);
}

TEST(AntichainsTest, MembersArePairwiseIncomparable) {
  for (const auto& family : AntichainsOf(ParseTuple("111"))) {
    for (size_t i = 0; i < family.size(); ++i) {
      for (size_t j = i + 1; j < family.size(); ++j) {
        EXPECT_TRUE(Incomparable(family[i], family[j]));
      }
    }
  }
}

TEST(AntichainsTest, ScatteredUniverseIsWidthFamilyRemapped) {
  // Memoization enumerates per width and remaps onto the universe: a
  // scattered universe must yield the Dedekind count, subsets of the
  // universe only, pairwise incomparable — and exactly the compact
  // families with bit j sent to the universe's j-th variable.
  VarSet universe = VarBit(1) | VarBit(4) | VarBit(9);
  auto scattered = AntichainsOf(universe);
  auto compact = AntichainsOf(AllTrue(3));
  ASSERT_EQ(scattered.size(), compact.size());
  auto remap = [&](VarSet s) {
    VarSet out = 0;
    if (HasVar(s, 0)) out |= VarBit(1);
    if (HasVar(s, 1)) out |= VarBit(4);
    if (HasVar(s, 2)) out |= VarBit(9);
    return out;
  };
  for (size_t f = 0; f < compact.size(); ++f) {
    ASSERT_EQ(scattered[f].size(), compact[f].size());
    for (size_t i = 0; i < compact[f].size(); ++i) {
      EXPECT_EQ(scattered[f][i], remap(compact[f][i]));
      EXPECT_TRUE(IsSubset(scattered[f][i], universe));
    }
  }
}

TEST(AntichainsTest, RepeatedCallsReturnIdenticalFamilies) {
  // The cache must be invisible: identical output on every call.
  auto first = AntichainsOf(ParseTuple("1111"));
  auto second = AntichainsOf(ParseTuple("1111"));
  EXPECT_EQ(first, second);
  EXPECT_EQ(first.size(), 168u);  // Dedekind number for m=4
}

TEST(SetPartitionsTest, CountsAreBellNumbers) {
  for (int n = 1; n <= 6; ++n) {
    EXPECT_EQ(SetPartitions(n).size(), BellNumber(n)) << "n=" << n;
  }
}

TEST(SetPartitionsTest, PartsAreDisjointAndCover) {
  for (const auto& partition : SetPartitions(5)) {
    VarSet seen = 0;
    for (VarSet part : partition) {
      EXPECT_NE(part, 0u);
      EXPECT_EQ(seen & part, 0u);
      seen |= part;
    }
    EXPECT_EQ(seen, AllTrue(5));
  }
}

TEST(EnumerateRolePreservingTest, TwoVariablesGivesSeven) {
  // Fig. 7 lists the verification sets of all role-preserving queries on
  // two variables — exactly 7 of them.
  std::vector<Query> queries = EnumerateRolePreserving(2);
  EXPECT_EQ(queries.size(), 7u);
  std::set<std::string> strings;
  for (const Query& q : queries) strings.insert(q.ToString());
  // The seven canonical classes.
  EXPECT_TRUE(strings.count("∃x1 ∃x2"));
  EXPECT_TRUE(strings.count("∃x1x2"));
  EXPECT_TRUE(strings.count("∀x1 ∃x1x2"));   // ∀x1 ∃x2 normalized (R3)
  EXPECT_TRUE(strings.count("∀x2 ∃x1x2"));
  EXPECT_TRUE(strings.count("∀x1 ∀x2 ∃x1x2"));
  EXPECT_TRUE(strings.count("∀x1→x2 ∃x1x2"));
  EXPECT_TRUE(strings.count("∀x2→x1 ∃x1x2"));
}

TEST(EnumerateRolePreservingTest, OneVariableGivesTwo) {
  // ∀x1 and ∃x1.
  EXPECT_EQ(EnumerateRolePreserving(1).size(), 2u);
}

TEST(EnumerateRolePreservingTest, AllResultsAreCanonicalAndDistinct) {
  std::vector<Query> queries = EnumerateRolePreserving(3);
  std::set<std::string> keys;
  for (const Query& q : queries) {
    EXPECT_TRUE(IsRolePreserving(q));
    EXPECT_EQ(q.MentionedVars(), AllTrue(3));
    keys.insert(Canonicalize(q).ToString());
  }
  EXPECT_EQ(keys.size(), queries.size());
}

TEST(EnumerateRolePreservingTest, PairwiseInequivalentSemantically) {
  std::vector<Query> queries = EnumerateRolePreserving(2);
  for (size_t i = 0; i < queries.size(); ++i) {
    for (size_t j = i + 1; j < queries.size(); ++j) {
      EXPECT_FALSE(BruteForceEquivalent(queries[i], queries[j]))
          << queries[i].ToString() << " vs " << queries[j].ToString();
    }
  }
}

TEST(EnumerateQhorn1Test, StructureCounts) {
  // n=1: ∀x1, ∃x1. n=2: 4 singleton combos + 4 arrow forms.
  EXPECT_EQ(EnumerateQhorn1(1).size(), 2u);
  EXPECT_EQ(EnumerateQhorn1(2).size(), 8u);
}

TEST(EnumerateQhorn1Test, AllStructuresValidAndCovering) {
  for (const Qhorn1Structure& s : EnumerateQhorn1(4)) {
    EXPECT_TRUE(IsQhorn1(s));
    EXPECT_TRUE(s.CoversAllVars());
  }
}

TEST(EnumerateQhorn1Test, DistinctCountSandwichedByBellBounds) {
  // §2.1.3: Bell(n) ≤ #distinct qhorn-1 queries ≤ 2^n·2^n·2^(n lg n).
  for (int n = 1; n <= 5; ++n) {
    uint64_t count = CountDistinctQhorn1(n);
    EXPECT_GE(count, BellNumber(n)) << "n=" << n;
    double lg_upper = LgQhorn1UpperBound(n);
    EXPECT_LE(std::log2(static_cast<double>(count)), lg_upper) << "n=" << n;
  }
}

}  // namespace
}  // namespace qhorn
