// Response history and correction replay (§5 "Noisy Users"): record every
// exchange, fix a wrong response, restart learning from the point of error
// without re-asking the unchanged prefix.

#include "src/oracle/transcript.h"

#include <gtest/gtest.h>

#include "src/core/normalize.h"
#include "src/learn/rp_learner.h"

namespace qhorn {
namespace {

TEST(TranscriptTest, RecordsEveryExchange) {
  QueryOracle inner(Query::Parse("∃x1", 2));
  TranscriptOracle transcript(&inner);
  transcript.IsAnswer(TupleSet::Parse({"10"}));
  transcript.IsAnswer(TupleSet::Parse({"01"}));
  ASSERT_EQ(transcript.entries().size(), 2u);
  EXPECT_TRUE(transcript.entries()[0].response);
  EXPECT_FALSE(transcript.entries()[1].response);
  EXPECT_NE(transcript.ToString(2).find("non-answer"), std::string::npos);
}

TEST(TranscriptTest, CorrectFlipsAndTruncates) {
  QueryOracle inner(Query::Parse("∃x1", 2));
  TranscriptOracle transcript(&inner);
  transcript.IsAnswer(TupleSet::Parse({"10"}));
  transcript.IsAnswer(TupleSet::Parse({"01"}));
  transcript.IsAnswer(TupleSet::Parse({"11"}));
  transcript.Correct(1);
  ASSERT_EQ(transcript.entries().size(), 2u);
  EXPECT_TRUE(transcript.entries()[1].response);  // flipped
}

TEST(ReplayTest, ServesPrefixThenFallsThrough) {
  QueryOracle truth(Query::Parse("∃x1", 2));
  std::vector<TranscriptEntry> recorded = {
      {TupleSet::Parse({"10"}), true},
      {TupleSet::Parse({"01"}), false},
  };
  CountingOracle counted_truth(&truth);
  ReplayOracle replay(recorded, &counted_truth);
  EXPECT_TRUE(replay.IsAnswer(TupleSet::Parse({"10"})));
  EXPECT_FALSE(replay.IsAnswer(TupleSet::Parse({"01"})));
  EXPECT_TRUE(replay.IsAnswer(TupleSet::Parse({"11"})));  // beyond prefix
  EXPECT_EQ(replay.replayed(), 2);
  EXPECT_EQ(replay.asked(), 1);
  EXPECT_EQ(counted_truth.stats().questions, 1);
}

TEST(ReplayTest, DivergenceStopsReplay) {
  QueryOracle truth(Query::Parse("∃x1", 2));
  std::vector<TranscriptEntry> recorded = {
      {TupleSet::Parse({"10"}), true},
      {TupleSet::Parse({"01"}), false},
  };
  ReplayOracle replay(recorded, &truth);
  // First question differs from the recording → all questions go to the
  // fallback, including ones that appear later in the recording.
  EXPECT_TRUE(replay.IsAnswer(TupleSet::Parse({"11"})));
  EXPECT_FALSE(replay.IsAnswer(TupleSet::Parse({"01"})));
  EXPECT_EQ(replay.replayed(), 0);
  EXPECT_EQ(replay.asked(), 2);
}

// End-to-end §5 workflow: a user answers one question wrong, the learner
// mislearns; the user corrects the response in the history; re-running the
// learner over the corrected replay converges to the right query and only
// re-asks from the point of error.
TEST(CorrectionWorkflowTest, RelearnAfterCorrection) {
  Query target = Query::Parse("∀x1x2→x4 ∃x3", 4);
  QueryOracle truth(target);

  // Pass 1: the "user" (a flaky wrapper) answers question #3 incorrectly.
  struct FlakyOracle : MembershipOracle {
    MembershipOracle* inner;
    int flip_at;
    int asked = 0;
    bool IsAnswer(const TupleSet& q) override {
      bool v = inner->IsAnswer(q);
      return ++asked == flip_at ? !v : v;
    }
  } flaky;
  flaky.inner = &truth;
  flaky.flip_at = 3;

  TranscriptOracle history(&flaky);
  RpLearnerResult wrong = LearnRolePreserving(4, &history);
  ASSERT_FALSE(Equivalent(wrong.query, target));

  // The user reviews the history and fixes response #3 (index 2).
  history.Correct(2);

  // Pass 2: replay the corrected history; unanswered questions go to the
  // real user (truth oracle this time).
  CountingOracle fresh(&truth);
  ReplayOracle replay(history.entries(), &fresh);
  RpLearnerResult fixed = LearnRolePreserving(4, &replay);
  EXPECT_TRUE(Equivalent(fixed.query, target))
      << "relearned: " << fixed.query.ToString();
  // The unchanged prefix (2 correct answers + the corrected one) came from
  // the recording, not the user.
  EXPECT_GE(replay.replayed(), 3);
}

}  // namespace
}  // namespace qhorn
