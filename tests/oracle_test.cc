// Oracle decorators: counting, caching, noise.

#include "src/oracle/oracle.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/util/bit_span.h"

namespace qhorn {
namespace {

TEST(QueryOracleTest, AnswersForTheIntendedQuery) {
  QueryOracle oracle(Query::Parse("∀x1 ∃x2", 2));
  EXPECT_TRUE(oracle.IsAnswer(TupleSet::Parse({"11"})));
  EXPECT_FALSE(oracle.IsAnswer(TupleSet::Parse({"01"})));
}

TEST(QueryOracleTest, RelaxedGuaranteesChangeClassification) {
  EvalOptions relaxed;
  relaxed.require_guarantees = false;
  QueryOracle strict(Query::Parse("∀x1", 1));
  QueryOracle loose(Query::Parse("∀x1", 1), relaxed);
  TupleSet empty;
  EXPECT_FALSE(strict.IsAnswer(empty));
  EXPECT_TRUE(loose.IsAnswer(empty));
}

TEST(CountingOracleTest, TracksQuestionAndTupleCounts) {
  QueryOracle inner(Query::Parse("∃x1", 2));
  CountingOracle counting(&inner);
  counting.IsAnswer(TupleSet::Parse({"10", "01"}));
  counting.IsAnswer(TupleSet::Parse({"10"}));
  counting.IsAnswer(TupleSet::Parse({"01"}));
  EXPECT_EQ(counting.stats().questions, 3);
  EXPECT_EQ(counting.stats().tuples, 4);
  EXPECT_EQ(counting.stats().max_tuples, 2);
  EXPECT_EQ(counting.stats().answers, 2);
  counting.ResetStats();
  EXPECT_EQ(counting.stats().questions, 0);
}

TEST(CachingOracleTest, RepeatedQuestionsHitTheCache) {
  QueryOracle inner(Query::Parse("∃x1", 2));
  CountingOracle counting(&inner);
  CachingOracle caching(&counting);
  TupleSet q1 = TupleSet::Parse({"10"});
  TupleSet q2 = TupleSet::Parse({"01"});
  EXPECT_TRUE(caching.IsAnswer(q1));
  EXPECT_TRUE(caching.IsAnswer(q1));
  EXPECT_FALSE(caching.IsAnswer(q2));
  EXPECT_FALSE(caching.IsAnswer(q2));
  EXPECT_EQ(caching.hits(), 2);
  EXPECT_EQ(caching.misses(), 2);
  EXPECT_EQ(counting.stats().questions, 2);  // inner asked only twice
}

TEST(CachingOracleTest, CanonicalFormMakesPermutationsHit) {
  QueryOracle inner(Query::Parse("∃x1", 2));
  CachingOracle caching(&inner);
  caching.IsAnswer(TupleSet::Parse({"10", "01"}));
  caching.IsAnswer(TupleSet::Parse({"01", "10"}));  // same object
  EXPECT_EQ(caching.hits(), 1);
}

TEST(NoisyOracleTest, ZeroNoiseIsTransparent) {
  QueryOracle inner(Query::Parse("∃x1", 1));
  NoisyOracle noisy(&inner, 0.0, /*seed=*/7);
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(noisy.IsAnswer(TupleSet::Parse({"1"})));
  }
  EXPECT_EQ(noisy.flips(), 0);
}

TEST(NoisyOracleTest, FlipRateNearProbability) {
  QueryOracle inner(Query::Parse("∃x1", 1));
  NoisyOracle noisy(&inner, 0.3, /*seed=*/11);
  int wrong = 0;
  for (int i = 0; i < 2000; ++i) {
    if (!noisy.IsAnswer(TupleSet::Parse({"1"}))) ++wrong;
  }
  EXPECT_EQ(wrong, noisy.flips());
  EXPECT_NEAR(static_cast<double>(wrong) / 2000.0, 0.3, 0.05);
}

TEST(NoisyOracleTest, AlwaysFlipInverts) {
  QueryOracle inner(Query::Parse("∃x1", 1));
  NoisyOracle noisy(&inner, 1.0, /*seed=*/3);
  EXPECT_FALSE(noisy.IsAnswer(TupleSet::Parse({"1"})));
  EXPECT_TRUE(noisy.IsAnswer(TupleSet::Parse({"0"})));
}

TEST(NoisyOracleTest, FlipCountStaysWithinBinomialBounds) {
  // Flip counts over a large batch are Binomial(N, p); a seeded draw
  // landing outside ±5σ of the mean indicates a broken noise source
  // (probability < 1e-6 per rate for a faithful one, so the test is
  // deterministic in practice yet sensitive to rate bugs like p/2, p²,
  // or a stuck RNG).
  QueryOracle inner(Query::Parse("∃x1", 1));
  const size_t kN = 20000;
  std::vector<TupleSet> questions(kN, TupleSet::Parse({"1"}));
  for (double p : {0.05, 0.3, 0.5, 0.75}) {
    NoisyOracle noisy(&inner, p, /*seed=*/0x5eedULL + std::llround(p * 100));
    EXPECT_EQ(noisy.flip_prob(), p);
    BitVec bits;
    noisy.IsAnswerBatch(questions, bits.Prepare(kN));
    const double mean = static_cast<double>(kN) * p;
    const double sigma = std::sqrt(static_cast<double>(kN) * p * (1.0 - p));
    EXPECT_NEAR(static_cast<double>(noisy.flips()), mean, 5.0 * sigma)
        << "flip count for p=" << p << " outside Binomial(N,p) ±5σ";
  }
}

TEST(NoisyOracleTest, BatchAndSequentialDecompositionsShareTheFlipSequence) {
  // The documented contract: flip draws happen in question order whether
  // the round arrives as one batch or question by question, so the same
  // seed yields bit-identical answers and the same flip count on either
  // path. (The pending-round replay protocol leans on this — a resumed
  // session re-runs batched what a synchronous session asked piecemeal.)
  QueryOracle inner(Query::Parse("∀x1 ∃x2", 2));
  const size_t kN = 512;
  std::vector<TupleSet> questions;
  questions.reserve(kN);
  const char* shapes[] = {"11", "01", "10", "00"};
  for (size_t i = 0; i < kN; ++i) {
    questions.push_back(TupleSet::Parse({shapes[i % 4], shapes[(i / 4) % 4]}));
  }
  NoisyOracle batched(&inner, 0.25, /*seed=*/99);
  NoisyOracle sequential(&inner, 0.25, /*seed=*/99);
  BitVec bits;
  BitSpan batch_answers = bits.Prepare(kN);
  batched.IsAnswerBatch(questions, batch_answers);
  for (size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(sequential.IsAnswer(questions[i]), batch_answers.Get(i))
        << "answer " << i << " differs between batch and sequential delivery";
  }
  EXPECT_EQ(batched.flips(), sequential.flips());
  EXPECT_GT(batched.flips(), 0) << "vacuous: the noise stream never fired";
}

}  // namespace
}  // namespace qhorn
