// Oracle decorators: counting, caching, noise.

#include "src/oracle/oracle.h"

#include <gtest/gtest.h>

namespace qhorn {
namespace {

TEST(QueryOracleTest, AnswersForTheIntendedQuery) {
  QueryOracle oracle(Query::Parse("∀x1 ∃x2", 2));
  EXPECT_TRUE(oracle.IsAnswer(TupleSet::Parse({"11"})));
  EXPECT_FALSE(oracle.IsAnswer(TupleSet::Parse({"01"})));
}

TEST(QueryOracleTest, RelaxedGuaranteesChangeClassification) {
  EvalOptions relaxed;
  relaxed.require_guarantees = false;
  QueryOracle strict(Query::Parse("∀x1", 1));
  QueryOracle loose(Query::Parse("∀x1", 1), relaxed);
  TupleSet empty;
  EXPECT_FALSE(strict.IsAnswer(empty));
  EXPECT_TRUE(loose.IsAnswer(empty));
}

TEST(CountingOracleTest, TracksQuestionAndTupleCounts) {
  QueryOracle inner(Query::Parse("∃x1", 2));
  CountingOracle counting(&inner);
  counting.IsAnswer(TupleSet::Parse({"10", "01"}));
  counting.IsAnswer(TupleSet::Parse({"10"}));
  counting.IsAnswer(TupleSet::Parse({"01"}));
  EXPECT_EQ(counting.stats().questions, 3);
  EXPECT_EQ(counting.stats().tuples, 4);
  EXPECT_EQ(counting.stats().max_tuples, 2);
  EXPECT_EQ(counting.stats().answers, 2);
  counting.ResetStats();
  EXPECT_EQ(counting.stats().questions, 0);
}

TEST(CachingOracleTest, RepeatedQuestionsHitTheCache) {
  QueryOracle inner(Query::Parse("∃x1", 2));
  CountingOracle counting(&inner);
  CachingOracle caching(&counting);
  TupleSet q1 = TupleSet::Parse({"10"});
  TupleSet q2 = TupleSet::Parse({"01"});
  EXPECT_TRUE(caching.IsAnswer(q1));
  EXPECT_TRUE(caching.IsAnswer(q1));
  EXPECT_FALSE(caching.IsAnswer(q2));
  EXPECT_FALSE(caching.IsAnswer(q2));
  EXPECT_EQ(caching.hits(), 2);
  EXPECT_EQ(caching.misses(), 2);
  EXPECT_EQ(counting.stats().questions, 2);  // inner asked only twice
}

TEST(CachingOracleTest, CanonicalFormMakesPermutationsHit) {
  QueryOracle inner(Query::Parse("∃x1", 2));
  CachingOracle caching(&inner);
  caching.IsAnswer(TupleSet::Parse({"10", "01"}));
  caching.IsAnswer(TupleSet::Parse({"01", "10"}));  // same object
  EXPECT_EQ(caching.hits(), 1);
}

TEST(NoisyOracleTest, ZeroNoiseIsTransparent) {
  QueryOracle inner(Query::Parse("∃x1", 1));
  NoisyOracle noisy(&inner, 0.0, /*seed=*/7);
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(noisy.IsAnswer(TupleSet::Parse({"1"})));
  }
  EXPECT_EQ(noisy.flips(), 0);
}

TEST(NoisyOracleTest, FlipRateNearProbability) {
  QueryOracle inner(Query::Parse("∃x1", 1));
  NoisyOracle noisy(&inner, 0.3, /*seed=*/11);
  int wrong = 0;
  for (int i = 0; i < 2000; ++i) {
    if (!noisy.IsAnswer(TupleSet::Parse({"1"}))) ++wrong;
  }
  EXPECT_EQ(wrong, noisy.flips());
  EXPECT_NEAR(static_cast<double>(wrong) / 2000.0, 0.3, 0.05);
}

TEST(NoisyOracleTest, AlwaysFlipInverts) {
  QueryOracle inner(Query::Parse("∃x1", 1));
  NoisyOracle noisy(&inner, 1.0, /*seed=*/3);
  EXPECT_FALSE(noisy.IsAnswer(TupleSet::Parse({"1"})));
  EXPECT_TRUE(noisy.IsAnswer(TupleSet::Parse({"0"})));
}

}  // namespace
}  // namespace qhorn
