// Shorthand parser: unicode and ASCII forms, round trips, error structure.

#include <gtest/gtest.h>

#include "src/core/query.h"

namespace qhorn {
namespace {

TEST(ParseTest, UnicodeShorthand) {
  Query q = Query::Parse("∀x1x2→x3 ∀x4 ∃x5");
  EXPECT_EQ(q.n(), 5);
  ASSERT_EQ(q.universal().size(), 2u);
  EXPECT_EQ(q.universal()[0].body, VarBit(0) | VarBit(1));
  EXPECT_EQ(q.universal()[0].head, 2);
  EXPECT_EQ(q.universal()[1].body, 0u);
  EXPECT_EQ(q.universal()[1].head, 3);
  ASSERT_EQ(q.existential().size(), 1u);
  EXPECT_EQ(q.existential()[0].vars, VarBit(4));
}

TEST(ParseTest, AsciiShorthand) {
  Query q = Query::Parse("A x1 x2 -> x3 ; A x4 ; E x5");
  EXPECT_EQ(q.ToString(), "∀x1x2→x3 ∀x4 ∃x5");
}

TEST(ParseTest, KeywordShorthand) {
  Query q = Query::Parse("forall x1 -> x2 exists x3");
  EXPECT_EQ(q.ToString(), "∀x1→x2 ∃x3");
}

TEST(ParseTest, ExistentialHornBecomesConjunction) {
  Query q = Query::Parse("∃x1x2→x5", 5);
  ASSERT_EQ(q.existential().size(), 1u);
  EXPECT_EQ(q.existential()[0].vars, VarBit(0) | VarBit(1) | VarBit(4));
  EXPECT_TRUE(q.universal().empty());
}

TEST(ParseTest, BodylessUniversalListExpands) {
  // ∀x1x3x5 (no arrow) = ∀x1 ∀x3 ∀x5, as in Theorem 2.1's Uni(X).
  Query q = Query::Parse("∀x1x3x5", 5);
  EXPECT_EQ(q.universal().size(), 3u);
  for (const UniversalHorn& u : q.universal()) EXPECT_EQ(u.body, 0u);
}

TEST(ParseTest, ExplicitNLargerThanMentioned) {
  Query q = Query::Parse("∃x1", 4);
  EXPECT_EQ(q.n(), 4);
  EXPECT_EQ(q.MentionedVars(), VarBit(0));
}

TEST(ParseTest, RoundTripThroughToString) {
  for (const char* text :
       {"∀x1x2→x3 ∀x4 ∃x5", "∃x1x2x3", "∀x1 ∀x2", "∀x2→x1 ∃x3x4",
        "∀x1x4→x5 ∀x3x4→x5 ∀x1x2→x6 ∃x1x2x3 ∃x2x3x4 ∃x1x2x5 ∃x2x3x5x6"}) {
    Query q = Query::Parse(text);
    EXPECT_EQ(Query::Parse(q.ToString(), q.n()).ToString(), q.ToString());
  }
}

TEST(ParseTest, ConjunctionSymbolsIgnored) {
  Query a = Query::Parse("∀x1 ∧ ∃x2");
  Query b = Query::Parse("∀x1 ∃x2");
  EXPECT_EQ(a, b);
}

TEST(ParseDeathTest, RejectsMissingQuantifier) {
  EXPECT_DEATH(Query::Parse("x1 → x2"), "expected a quantifier");
}

TEST(ParseDeathTest, RejectsTwoHeads) {
  EXPECT_DEATH(Query::Parse("∀x1→x2x3"), "single head");
}

TEST(ParseDeathTest, RejectsDanglingArrow) {
  EXPECT_DEATH(Query::Parse("∀x1→"), "followed by one head");
}

TEST(ParseDeathTest, RejectsHeadInOwnBody) {
  EXPECT_DEATH(Query::Parse("∀x1x2→x1"), "own body");
}

TEST(ParseDeathTest, RejectsGarbage) {
  EXPECT_DEATH(Query::Parse("∀x1 banana"), "unexpected character");
}

}  // namespace
}  // namespace qhorn
