// Propositions and interference detection (§2's independence assumption).

#include "src/relation/proposition.h"

#include <gtest/gtest.h>

#include "src/relation/chocolate.h"

namespace qhorn {
namespace {

TEST(PropositionTest, EvaluateOnChocolate) {
  Schema schema = ChocolateSchema();
  DataTuple c = MakeChocolate(true, false, true, false, "Madagascar");
  EXPECT_TRUE(Proposition::BoolAttr("isDark").EvaluateOn(schema, c));
  EXPECT_FALSE(Proposition::BoolAttr("hasFilling").EvaluateOn(schema, c));
  EXPECT_TRUE(Proposition::Equals("origin", Value::Str("Madagascar"))
                  .EvaluateOn(schema, c));
  EXPECT_FALSE(Proposition::Equals("origin", Value::Str("Belgium"))
                   .EvaluateOn(schema, c));
}

TEST(PropositionTest, IntComparisons) {
  Schema schema({{"cocoa", ValueType::kInt}});
  DataTuple t = {Value::Int(70)};
  EXPECT_TRUE(Proposition::Greater("cocoa", 60).EvaluateOn(schema, t));
  EXPECT_FALSE(Proposition::Greater("cocoa", 70).EvaluateOn(schema, t));
  EXPECT_TRUE(Proposition::Less("cocoa", 80).EvaluateOn(schema, t));
  EXPECT_FALSE(Proposition::Less("cocoa", 70).EvaluateOn(schema, t));
}

TEST(PropositionTest, Labels) {
  EXPECT_EQ(Proposition::BoolAttr("isDark").label(), "isDark");
  EXPECT_EQ(Proposition::Equals("origin", Value::Str("Belgium")).label(),
            "origin = Belgium");
  EXPECT_EQ(Proposition::Less("cocoa", 80).label(), "cocoa < 80");
  EXPECT_EQ(Proposition::Greater("cocoa", 60).label(), "cocoa > 60");
}

TEST(InterferenceTest, ThePapersExample) {
  // pm: origin = Madagascar and pb: origin = Belgium interfere
  // (pm → ¬pb and pb → ¬pm).
  Proposition pm = Proposition::Equals("origin", Value::Str("Madagascar"));
  Proposition pb = Proposition::Equals("origin", Value::Str("Belgium"));
  EXPECT_TRUE(Interferes(pm, pb));
}

TEST(InterferenceTest, DifferentAttributesNeverInterfere) {
  Proposition a = Proposition::BoolAttr("isDark");
  Proposition b = Proposition::BoolAttr("hasFilling");
  EXPECT_FALSE(Interferes(a, b));
  Proposition c = Proposition::Equals("origin", Value::Str("Belgium"));
  EXPECT_FALSE(Interferes(a, c));
}

TEST(InterferenceTest, SameBoolAttrTwiceInterferes) {
  // Identical propositions can never take opposite truth values.
  Proposition a = Proposition::BoolAttr("isDark");
  EXPECT_TRUE(Interferes(a, a));
}

TEST(InterferenceTest, DisjointIntRangesInterfere) {
  // cocoa < 30 and cocoa > 60 cannot both be true.
  Proposition low = Proposition::Less("cocoa", 30);
  Proposition high = Proposition::Greater("cocoa", 60);
  EXPECT_TRUE(Interferes(low, high));
}

TEST(InterferenceTest, OverlappingIntRangesInterfereThroughFalseFalse) {
  // cocoa < 60 and cocoa > 30: both *false* is impossible (≥60 ∧ ≤30), so
  // they interfere — on a totally ordered attribute any two threshold
  // propositions constrain each other.
  Proposition low = Proposition::Less("cocoa", 60);
  Proposition high = Proposition::Greater("cocoa", 30);
  EXPECT_TRUE(Interferes(low, high));
}

TEST(InterferenceTest, ThresholdsOnDifferentAttributesAreIndependent) {
  Proposition a = Proposition::Greater("cocoa", 30);
  Proposition b = Proposition::Less("sugar", 10);
  EXPECT_FALSE(Interferes(a, b));
}

TEST(InterferenceTest, AdjacentRangesInterfere) {
  // cocoa < 50 and cocoa > 49: tt impossible... and ff impossible too
  // (every integer satisfies one of them).
  Proposition low = Proposition::Less("cocoa", 50);
  Proposition high = Proposition::Greater("cocoa", 49);
  EXPECT_TRUE(Interferes(low, high));
}

TEST(InterferenceTest, EqualsAndCoveringComparison) {
  // cocoa = 70 and cocoa > 60: "true,false" impossible.
  Proposition eq = Proposition::Equals("cocoa", Value::Int(70));
  Proposition gt = Proposition::Greater("cocoa", 60);
  EXPECT_TRUE(Interferes(eq, gt));
  // cocoa = 70 and cocoa > 80 : tt impossible.
  EXPECT_TRUE(Interferes(eq, Proposition::Greater("cocoa", 80)));
}

TEST(InterferenceTest, MixedTypePropositionsOnOneAttributeInterfere) {
  Proposition s = Proposition::Equals("origin", Value::Str("Belgium"));
  Proposition i = Proposition::Equals("origin", Value::Int(3));
  EXPECT_TRUE(Interferes(s, i));
}

TEST(FindInterferenceTest, ReportsAllPairs) {
  std::vector<Proposition> props = {
      Proposition::BoolAttr("isDark"),
      Proposition::Equals("origin", Value::Str("Madagascar")),
      Proposition::Equals("origin", Value::Str("Belgium")),
      Proposition::Equals("origin", Value::Str("Sweden")),
  };
  auto pairs = FindInterference(props);
  // The three origin propositions pairwise interfere.
  EXPECT_EQ(pairs.size(), 3u);
}

TEST(FindInterferenceTest, CleanSetIsEmpty) {
  EXPECT_TRUE(FindInterference(ChocolatePropositions()).empty());
}

}  // namespace
}  // namespace qhorn
