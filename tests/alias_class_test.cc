// Theorem 2.1: the Uni(X) ∧ Alias(Y) family and its Ω(2^n) adversary.

#include "src/lower_bounds/alias_class.h"

#include <gtest/gtest.h>

#include "src/core/classify.h"

namespace qhorn {
namespace {

TEST(AliasInstanceTest, PaperExampleSemantics) {
  // Uni({x1,x3,x5}) ∧ Alias({x2,x4,x6}): only {1^6} and {1^6, 101010}
  // are answers among the two-tuple questions considered in the proof.
  VarSet x = VarBit(0) | VarBit(2) | VarBit(4);
  Query q = AliasInstance(6, x);
  EXPECT_TRUE(q.Evaluate(TupleSet{AllTrue(6)}));
  EXPECT_TRUE(q.Evaluate(TupleSet{AllTrue(6), ParseTuple("101010")}));
  // A tuple whose false variables are not exactly the alias set fails.
  EXPECT_FALSE(q.Evaluate(TupleSet{AllTrue(6), ParseTuple("100010")}));
  EXPECT_FALSE(q.Evaluate(TupleSet{AllTrue(6), ParseTuple("111010")}));
  // Two or more non-top tuples: always a non-answer.
  EXPECT_FALSE(q.Evaluate(
      TupleSet{AllTrue(6), ParseTuple("101010"), ParseTuple("101011")}));
}

TEST(AliasInstanceTest, VariablesRepeatSoNotRolePreserving) {
  // Alias variables are heads and bodies at once — the separation that
  // makes general qhorn hard.
  Query q = AliasInstance(5, VarBit(0));
  EXPECT_FALSE(IsRolePreserving(q));
}

TEST(AliasInstanceTest, AllUniversalInstanceHasNoAlias) {
  Query q = AliasInstance(4, AllTrue(4));
  EXPECT_EQ(q.universal().size(), 4u);
  EXPECT_TRUE(IsRolePreserving(q));  // no alias cycle, all bodyless
}

TEST(AliasClassTest, SizeIsTwoToTheNMinusSingletons) {
  // Splits with |Y| = 1 are excluded.
  EXPECT_EQ(AliasClass(4).size(), (1u << 4) - 4);
  EXPECT_EQ(AliasClass(6).size(), (1u << 6) - 6);
}

TEST(AliasClassTest, PositiveQuestionsSeparateInstances) {
  // The question for X is an answer only for the instance with that X.
  int n = 5;
  std::vector<Query> cls = AliasClass(n);
  for (VarSet x = 0; x < (VarSet{1} << n); ++x) {
    if (Popcount(AllTrue(n) & ~x) == 1) continue;
    TupleSet question = AliasPositiveQuestion(n, x);
    int yes = 0;
    for (Query& q : cls) {
      if (q.Evaluate(question)) ++yes;
    }
    // The all-true mask gives the uninformative {1^n} question (answer for
    // every instance); every other question pins exactly one instance.
    if (x == AllTrue(n)) {
      EXPECT_EQ(yes, static_cast<int>(cls.size()));
    } else {
      EXPECT_EQ(yes, 1) << FormatVarSet(x);
    }
  }
}

class AliasLowerBoundTest : public ::testing::TestWithParam<int> {};

TEST_P(AliasLowerBoundTest, AdversaryForcesClassSizeQuestions) {
  int n = GetParam();
  AdversaryOracle adversary(AliasClass(n));
  int64_t questions = RunAliasEliminationLearner(n, &adversary);
  EXPECT_TRUE(adversary.Pinned());
  // Each question eliminates one candidate: #candidates − 1 questions.
  EXPECT_EQ(questions, static_cast<int64_t>((1u << n) - n - 1));
}

INSTANTIATE_TEST_SUITE_P(Ns, AliasLowerBoundTest,
                         ::testing::Values(3, 4, 5, 6, 8, 10));

}  // namespace
}  // namespace qhorn
