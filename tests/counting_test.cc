// Counting results of §2 and §2.1.3: Bell numbers, 2^(2^n) objects,
// doubly-exponential query counts, binomials.

#include "src/core/counting.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/util/stats.h"

namespace qhorn {
namespace {

TEST(CountingTest, BellNumbers) {
  EXPECT_EQ(BellNumber(0), 1u);
  EXPECT_EQ(BellNumber(1), 1u);
  EXPECT_EQ(BellNumber(2), 2u);
  EXPECT_EQ(BellNumber(3), 5u);
  EXPECT_EQ(BellNumber(4), 15u);
  EXPECT_EQ(BellNumber(5), 52u);
  EXPECT_EQ(BellNumber(10), 115975u);
  EXPECT_EQ(BellNumber(25), 4638590332229999353u);
}

TEST(CountingTest, LgBellMatchesExactValues) {
  for (int n : {1, 5, 10, 20, 25}) {
    double expected = std::log2(static_cast<double>(BellNumber(n)));
    EXPECT_NEAR(LgBellNumber(n), expected, 1e-6) << "n=" << n;
  }
}

TEST(CountingTest, LgBellIsThetaNLogN) {
  // ln(B_n) = Θ(n ln n): the ratio lg(B_n)/(n lg n) stays bounded.
  for (int n : {20, 50, 100, 200}) {
    double ratio = LgBellNumber(n) / (n * Lg(n));
    EXPECT_GT(ratio, 0.2) << "n=" << n;
    EXPECT_LT(ratio, 1.2) << "n=" << n;
  }
}

TEST(CountingTest, Qhorn1UpperBound) {
  // lg(2^n·2^n·2^(n lg n)) = 2n + n lg n.
  EXPECT_DOUBLE_EQ(LgQhorn1UpperBound(8), 16.0 + 8.0 * 3.0);
}

TEST(CountingTest, NumBooleanTuples) {
  // §2: with 3 propositions, 8 chocolate classes.
  EXPECT_EQ(NumBooleanTuples(3), 8u);
  EXPECT_EQ(NumBooleanTuples(0), 1u);
}

TEST(CountingTest, NumObjectsString) {
  // §2: 256 boxes of distinct mixes of the 8 chocolate classes.
  EXPECT_EQ(NumObjectsString(3), "256");
  EXPECT_EQ(NumObjectsString(0), "2");
  EXPECT_EQ(NumObjectsString(2), "16");
}

TEST(CountingTest, LgNumQueriesString) {
  // §2: lg(#queries) = 2^(2^n) membership questions needed; for n = 3
  // that's 256 (and #queries ≈ 10^77).
  EXPECT_EQ(LgNumQueriesString(3), "256");
}

TEST(CountingTest, Binomial) {
  EXPECT_EQ(Binomial(4, 2), 6u);
  EXPECT_EQ(Binomial(10, 0), 1u);
  EXPECT_EQ(Binomial(10, 10), 1u);
  EXPECT_EQ(Binomial(5, 7), 0u);
  EXPECT_EQ(Binomial(52, 5), 2598960u);
}

TEST(CountingDeathTest, BellBeyondExactRangeAborts) {
  EXPECT_DEATH(BellNumber(26), "Bell");
}

}  // namespace
}  // namespace qhorn
