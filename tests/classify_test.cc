// Structural classification: role preservation (§2.1.4), causal density θ
// (Def. 2.6), dominant query size.

#include "src/core/classify.h"

#include <gtest/gtest.h>

namespace qhorn {
namespace {

TEST(ClassifyTest, RolePreservingExamplesFromThePaper) {
  // §2.1.4's positive example.
  EXPECT_TRUE(IsRolePreserving(
      Query::Parse("∀x1x4→x5 ∀x3x4→x5 ∀x2x4→x6 ∃x1x2x3 ∃x1x2x5x6")));
  // §2.1.4's negative example: x5 is head and body.
  EXPECT_FALSE(IsRolePreserving(Query::Parse("∀x1x4→x5 ∀x2x3x5→x6")));
}

TEST(ClassifyTest, ExistentialConjunctionsAreRoleFree) {
  // A head may appear inside existential conjunctions freely.
  EXPECT_TRUE(IsRolePreserving(Query::Parse("∀x1→x2 ∃x2x3")));
}

TEST(ClassifyTest, AliasCycleIsNotRolePreserving) {
  EXPECT_FALSE(IsRolePreserving(Query::Parse("∀x1→x2 ∀x2→x1")));
}

TEST(ClassifyTest, CausalDensityCountsNonDominatedExpressions) {
  // Two incomparable bodies for x5, one for x6 → θ = 2.
  EXPECT_EQ(CausalDensity(
                Query::Parse("∀x1x4→x5 ∀x3x4→x5 ∀x1x2→x6 ∃x1x2x3")),
            2);
  // A dominated body does not count.
  EXPECT_EQ(CausalDensity(Query::Parse("∀x1→x5 ∀x1x2→x5", 5)), 1);
  // No universal expressions → θ = 0.
  EXPECT_EQ(CausalDensity(Query::Parse("∃x1x2")), 0);
  // Bodyless dominates everything.
  EXPECT_EQ(CausalDensity(Query::Parse("∀x5 ∀x1→x5 ∀x2x3→x5", 5)), 1);
}

TEST(ClassifyTest, DominantSizeDropsRedundancy) {
  // ∃x1 is dominated by ∃x1x2; ∀x1x2→x3 by ∀x1→x3. Dominant expressions:
  // ∀x1→x3, ∃x1x2x3 (the closed conjunction, which also covers the
  // guarantee).
  Query q = Query::Parse("∃x1 ∃x1x2 ∀x1x2→x3 ∀x1→x3");
  EXPECT_EQ(DominantSize(q), 2);
}

TEST(ClassifyTest, IsQhorn1AcceptsValidParts) {
  Qhorn1Structure good(4);
  good.AddPart(Qhorn1Part{VarBit(0), VarBit(1), VarBit(2)});
  good.AddPart(Qhorn1Part{0, 0, VarBit(3)});
  EXPECT_TRUE(IsQhorn1(good));
}

TEST(ClassifyTest, IsQhorn1RejectsInvalidParts) {
  // A part with no head.
  EXPECT_FALSE(IsQhorn1({Qhorn1Part{VarBit(0), 0, 0}}));
  // A head quantified both ways.
  EXPECT_FALSE(IsQhorn1({Qhorn1Part{VarBit(0), VarBit(1), VarBit(1)}}));
  // A head inside its own body.
  EXPECT_FALSE(
      IsQhorn1({Qhorn1Part{VarBit(0) | VarBit(1), VarBit(1), 0}}));
  // A bodyless part with two heads.
  EXPECT_FALSE(IsQhorn1({Qhorn1Part{0, VarBit(0) | VarBit(1), 0}}));
  // Variable reuse across parts (restriction 4).
  EXPECT_FALSE(IsQhorn1({Qhorn1Part{VarBit(0), VarBit(1), 0},
                         Qhorn1Part{VarBit(0), VarBit(2), 0}}));
  // Overlapping-but-unequal bodies are variable reuse too.
  EXPECT_FALSE(IsQhorn1({Qhorn1Part{VarBit(0) | VarBit(1), VarBit(2), 0},
                         Qhorn1Part{VarBit(1) | VarBit(3), VarBit(4), 0}}));
}

}  // namespace
}  // namespace qhorn
