// Learning universal Horn expressions in role-preserving qhorn (§3.2.1,
// Theorem 3.5): head detection, bodyless detection, Algorithm 6 extraction,
// search-root enumeration, and the O(n^θ) question budget.

#include "src/learn/rp_universal.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "src/core/normalize.h"
#include "src/core/random_query.h"
#include "src/util/stats.h"

namespace qhorn {
namespace {

// Sorted (head, body) pairs for comparison.
std::multiset<std::pair<int, VarSet>> HornSet(
    const std::vector<UniversalHorn>& horns) {
  std::multiset<std::pair<int, VarSet>> out;
  for (const UniversalHorn& u : horns) out.insert({u.head, u.body});
  return out;
}

RpUniversalResult Learn(const Query& target) {
  QueryOracle oracle(target);
  return LearnUniversalHorns(target.n(), &oracle);
}

TEST(RpUniversalTest, DetectsHeadVariables) {
  RpUniversalResult r =
      Learn(Query::Parse("∀x1x4→x5 ∀x3x4→x5 ∀x1x2→x6 ∃x1x2x3"));
  EXPECT_EQ(r.head_vars, VarBit(4) | VarBit(5));
}

TEST(RpUniversalTest, NoHeadsInPureExistentialQuery) {
  RpUniversalResult r = Learn(Query::Parse("∃x1x2 ∃x3", 3));
  EXPECT_EQ(r.head_vars, 0u);
  EXPECT_TRUE(r.horns.empty());
}

TEST(RpUniversalTest, BodylessHead) {
  RpUniversalResult r = Learn(Query::Parse("∀x2 ∃x1x3", 3));
  EXPECT_EQ(HornSet(r.horns),
            (std::multiset<std::pair<int, VarSet>>{{1, 0}}));
}

TEST(RpUniversalTest, SingleBody) {
  RpUniversalResult r = Learn(Query::Parse("∀x1x3→x4 ∃x2", 4));
  EXPECT_EQ(HornSet(r.horns), (std::multiset<std::pair<int, VarSet>>{
                                  {3, VarBit(0) | VarBit(2)}}));
}

TEST(RpUniversalTest, PaperExampleTwoBodiesOneHead) {
  // Fig. 5's setting: x5 has bodies x1x4 and x3x4.
  RpUniversalResult r =
      Learn(Query::Parse("∀x1x4→x5 ∀x3x4→x5 ∀x1x2→x6 ∃x1x2x3 ∃x2x3x4"));
  std::multiset<std::pair<int, VarSet>> expected = {
      {4, VarBit(0) | VarBit(3)},
      {4, VarBit(2) | VarBit(3)},
      {5, VarBit(0) | VarBit(1)},
  };
  EXPECT_EQ(HornSet(r.horns), expected);
}

TEST(RpUniversalTest, ThreeDisjointBodies) {
  RpUniversalResult r =
      Learn(Query::Parse("∀x1x2→x7 ∀x3x4→x7 ∀x5x6→x7", 7));
  EXPECT_EQ(r.horns.size(), 3u);
}

TEST(RpUniversalTest, OverlappingIncomparableBodies) {
  RpUniversalResult r =
      Learn(Query::Parse("∀x1x2→x5 ∀x2x3→x5 ∀x3x4→x5", 5));
  std::multiset<std::pair<int, VarSet>> expected = {
      {4, VarBit(0) | VarBit(1)},
      {4, VarBit(1) | VarBit(2)},
      {4, VarBit(2) | VarBit(3)},
  };
  EXPECT_EQ(HornSet(r.horns), expected);
}

TEST(RpUniversalTest, DominatedInputBodiesComeBackMinimal) {
  // The target contains a dominated expression; only the dominant body is
  // discoverable (they are semantically indistinguishable — R2).
  RpUniversalResult r = Learn(Query::Parse("∀x1→x3 ∀x1x2→x3", 3));
  EXPECT_EQ(HornSet(r.horns),
            (std::multiset<std::pair<int, VarSet>>{{2, VarBit(0)}}));
}

TEST(RpUniversalTest, SingletonBodies) {
  RpUniversalResult r = Learn(Query::Parse("∀x1→x3 ∀x2→x3", 3));
  EXPECT_EQ(r.horns.size(), 2u);
}

TEST(RpUniversalTest, WholePoolBody) {
  RpUniversalResult r = Learn(Query::Parse("∀x1x2x3x4x5→x6", 6));
  EXPECT_EQ(HornSet(r.horns),
            (std::multiset<std::pair<int, VarSet>>{{5, AllTrue(5)}}));
}

// Question budget: O(n^θ) per head (Theorem 3.5) with a small constant.
class RpUniversalBudgetTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(RpUniversalBudgetTest, WithinTheorem35Budget) {
  auto [n, theta] = GetParam();
  Rng rng(uint64_t(n) * 1000 + uint64_t(theta));
  RpOptions opts;
  opts.num_heads = 1;
  opts.theta = theta;
  opts.body_size = 3;
  opts.num_conjunctions = 0;
  Query target = RandomRolePreserving(n, rng, opts);

  QueryOracle oracle(target);
  CountingOracle counting(&oracle);
  RpUniversalResult r = LearnUniversalHorns(n, &counting);

  Query relearned(n);
  for (const UniversalHorn& u : r.horns) relearned.AddUniversal(u.body, u.head);
  for (const ExistentialConj& e : target.existential()) {
    relearned.AddExistential(e.vars);
  }
  EXPECT_TRUE(Equivalent(relearned, target)) << target.ToString();

  double budget = 10.0 * (n + std::pow(n, theta)) + 50.0;
  EXPECT_LE(static_cast<double>(counting.stats().questions), budget)
      << "n=" << n << " θ=" << theta;
}

INSTANTIATE_TEST_SUITE_P(Sweep, RpUniversalBudgetTest,
                         ::testing::Combine(::testing::Values(8, 12, 16),
                                            ::testing::Values(1, 2, 3)));

TEST(RpUniversalTest, QuestionsUseTwoTuplesEach) {
  Query target = Query::Parse("∀x1x4→x5 ∀x3x4→x5 ∃x1x2x3", 5);
  QueryOracle oracle(target);
  CountingOracle counting(&oracle);
  LearnUniversalHorns(5, &counting);
  EXPECT_LE(counting.stats().max_tuples, 2);
}

}  // namespace
}  // namespace qhorn
