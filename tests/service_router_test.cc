// The concurrent session service: Executor, CompiledQueryCache and
// SessionRouter.
//
// The load-bearing property is determinism under concurrency: a session's
// transcript depends only on its own job sequence, never on scheduling.
// The stress tests drive 8–64 concurrent sessions over mixed
// learn/verify/revise workloads on a multi-lane router and assert every
// per-session observable equals a single-threaded replay of the same jobs.
// Run under the tsan preset in CI.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <string>
#include <tuple>
#include <vector>

#include "src/core/normalize.h"
#include "src/core/random_query.h"
#include "src/learn/pac.h"
#include "src/oracle/pipeline.h"
#include "src/session/router.h"
#include "src/util/executor.h"
#include "tests/session_fingerprint.h"

namespace qhorn {
namespace {

// ---------------------------------------------------------------------------
// Executor.

TEST(ExecutorTest, ParallelForCoversTheRangeExactlyOnce) {
  for (int threads : {1, 2, 4, 8}) {
    Executor executor(threads);
    EXPECT_EQ(executor.concurrency(), threads);
    std::vector<std::atomic<int>> hits(1000);
    executor.ParallelFor(1000, 64, [&](size_t begin, size_t end) {
      if (begin != 1000) {
        EXPECT_EQ(begin % 64, 0u) << "shard boundaries must be grain-aligned";
      }
      for (size_t i = begin; i < end; ++i) {
        hits[i].fetch_add(1, std::memory_order_relaxed);
      }
    });
    for (size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " threads " << threads;
    }
  }
}

TEST(ExecutorTest, ParallelForHandlesEmptyAndTinyRanges) {
  Executor executor(4);
  int calls = 0;
  executor.ParallelFor(0, 64, [&](size_t, size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  std::atomic<int> sum{0};
  executor.ParallelFor(3, 64, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) sum.fetch_add(static_cast<int>(i));
  });
  EXPECT_EQ(sum.load(), 0 + 1 + 2);
}

TEST(ExecutorTest, NestedParallelForDoesNotDeadlock) {
  Executor executor(4);
  std::atomic<int> total{0};
  // Every outer shard issues an inner loop on the same pool; with all
  // lanes blocked in outer waits, progress depends on the waiters
  // draining helper tasks.
  executor.ParallelFor(8, 1, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      executor.ParallelFor(256, 64, [&](size_t b, size_t e) {
        total.fetch_add(static_cast<int>(e - b), std::memory_order_relaxed);
      });
    }
  });
  EXPECT_EQ(total.load(), 8 * 256);
}

TEST(ExecutorTest, PostRunsInlineAtConcurrencyOne) {
  Executor executor(1);
  bool ran = false;
  executor.Post([&] { ran = true; });
  EXPECT_TRUE(ran) << "a 1-lane executor is synchronous";
}

TEST(ExecutorTest, QhornThreadsOverridesDefaultConcurrency) {
  // The override is read per call, so the test can set it temporarily.
  setenv("QHORN_THREADS", "3", /*overwrite=*/1);
  EXPECT_EQ(Executor::DefaultConcurrency(), 3);
  setenv("QHORN_THREADS", "not-a-number", 1);
  EXPECT_GE(Executor::DefaultConcurrency(), 1);
  unsetenv("QHORN_THREADS");
  EXPECT_GE(Executor::DefaultConcurrency(), 1);
}

// ---------------------------------------------------------------------------
// Parallel EvaluateAll: sharded verdicts must equal inline verdicts.

TEST(ParallelEvaluateAllTest, ShardedEqualsInline) {
  Rng rng(11);
  RpOptions qopts;
  qopts.num_heads = 2;
  qopts.theta = 2;
  qopts.num_conjunctions = 3;
  Query q = RandomRolePreserving(16, rng, qopts);
  CompiledQuery compiled(q);
  size_t count = 2 * CompiledQuery::kParallelRoundCutover + 101;
  std::vector<TupleSet> objects;
  for (size_t i = 0; i < count; ++i) {
    objects.push_back(RandomObject(16, rng, 8));
  }
  BitVec inline_bits;
  compiled.EvaluateAll(objects, inline_bits.Prepare(count), nullptr);
  Executor executor(4);
  BitVec parallel_bits;
  compiled.EvaluateAll(objects, parallel_bits.Prepare(count), &executor);
  for (size_t i = 0; i < count; ++i) {
    ASSERT_EQ(parallel_bits.Get(i), inline_bits.Get(i)) << "object " << i;
  }
}

// ---------------------------------------------------------------------------
// CompiledQueryCache.

TEST(CompiledQueryCacheTest, EquivalentQueriesShareOneCompile) {
  CompiledQueryCache cache;
  // R3: ∃x1x3 absorbs the implied head x2, so these two queries share a
  // canonical form and must share one compiled entry.
  Query a = Query::Parse("∀x1→x2 ∃x1x3", 3);
  Query b = Query::Parse("∀x1→x2 ∃x1x2x3", 3);
  ASSERT_TRUE(Equivalent(a, b));
  auto ca = cache.Get(a, EvalOptions());
  auto cb = cache.Get(b, EvalOptions());
  EXPECT_EQ(ca.get(), cb.get());
  EXPECT_EQ(cache.hits(), 1);
  EXPECT_EQ(cache.misses(), 1);
}

TEST(CompiledQueryCacheTest, GuaranteeModesDoNotAlias) {
  CompiledQueryCache cache;
  // Relaxed evaluation ignores guarantee clauses, so the two modes answer
  // differently for this query ({} is an answer iff guarantees are off) —
  // they must compile separately.
  Query q = Query::Parse("∀x1→x2", 2);
  EvalOptions strict;
  EvalOptions relaxed;
  relaxed.require_guarantees = false;
  auto cs = cache.Get(q, strict);
  auto cr = cache.Get(q, relaxed);
  EXPECT_NE(cs.get(), cr.get());
  TupleSet empty;
  EXPECT_FALSE(cs->Evaluate(empty));
  EXPECT_TRUE(cr->Evaluate(empty));

  // Equal *strict* canonical forms are not enough under relaxed
  // semantics: ∀x1→x2 and ∀x1→x2 ∃x1x2 are strictly equivalent (the
  // explicit conjunction is the guarantee clause), yet differ relaxed —
  // the relaxed key must separate them.
  Query e = Query::Parse("∀x1→x2 ∃x1x2", 2);
  ASSERT_TRUE(Equivalent(q, e));  // strict-mode semantic equivalence
  auto ce = cache.Get(e, relaxed);
  EXPECT_NE(cr.get(), ce.get());
  EXPECT_FALSE(ce->Evaluate(empty));
}

TEST(CompiledQueryCacheTest, CachedCompileAnswersLikeAFreshOne) {
  CompiledQueryCache cache;
  Rng rng(5);
  for (int i = 0; i < 20; ++i) {
    RpOptions opts;
    opts.num_heads = 1 + static_cast<int>(rng.Range(0, 1));
    opts.theta = 2;
    opts.num_conjunctions = 2;
    Query q = RandomRolePreserving(8, rng, opts);
    auto shared = cache.Get(q, EvalOptions());
    CompiledQuery fresh(q);
    for (int j = 0; j < 50; ++j) {
      TupleSet object = RandomObject(8, rng, 6);
      ASSERT_EQ(shared->Evaluate(object), fresh.Evaluate(object))
          << q.ToString() << " on " << object.ToString(8);
    }
  }
}

// ---------------------------------------------------------------------------
// SessionRouter: ordering, stats, aggregate behaviour.

TEST(SessionRouterTest, JobsOfOneSessionRunInSubmissionOrder) {
  SessionRouter::Options opts;
  opts.threads = 4;
  SessionRouter router(opts);
  Query target = Query::Parse("∀x1x2→x4 ∃x3", 4);
  SessionRouter::SessionId id = router.OpenSimulated(target);
  std::vector<int> order;
  std::mutex order_mutex;
  for (int i = 0; i < 16; ++i) {
    router.Submit(id, [i, &order, &order_mutex](QuerySession&) {
      std::lock_guard<std::mutex> lock(order_mutex);
      order.push_back(i);
    });
  }
  router.Drain();
  ASSERT_EQ(order.size(), 16u);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(SessionRouterTest, LearnVerifyReviseAcrossSessions) {
  SessionRouter::Options opts;
  opts.threads = 4;
  SessionRouter router(opts);
  Query target = Query::Parse("∀x1x2→x5 ∃x3x4", 5);
  std::vector<SessionRouter::SessionId> ids;
  for (int s = 0; s < 12; ++s) {
    ids.push_back(router.OpenSimulated(target));
  }
  for (size_t s = 0; s < ids.size(); ++s) {
    switch (s % 3) {
      case 0:
        router.SubmitLearn(ids[s]);
        break;
      case 1:
        router.SubmitVerify(ids[s], target);
        break;
      default:
        router.SubmitRevise(ids[s], Query::Parse("∀x1x2→x5 ∃x3x4x5", 5));
        break;
    }
  }
  router.Drain();
  ServiceStats stats = router.stats();
  EXPECT_EQ(stats.sessions, 12);
  EXPECT_EQ(stats.jobs, 12);
  EXPECT_EQ(stats.learns, 4);
  EXPECT_EQ(stats.verifies, 4);
  EXPECT_EQ(stats.revisions, 4);
  EXPECT_EQ(stats.compiled_misses, 1) << "12 sessions share one compile";
  EXPECT_EQ(stats.compiled_hits, 11);
  EXPECT_GT(stats.questions, 0);
  EXPECT_GT(stats.rounds, 0);
  for (SessionRouter::SessionId id : ids) {
    ASSERT_TRUE(router.session(id).current_query().has_value());
    EXPECT_TRUE(Equivalent(*router.session(id).current_query(), target));
  }
}

// ---------------------------------------------------------------------------
// The stress test (the router's contract): per-session transcripts under a
// many-lane router equal their single-threaded replays, job for job.

struct SessionPlan {
  Query target;
  // 0 = learn, 1 = verify(correct), 2 = verify(wrong), 3 = revise(close).
  std::vector<int> jobs;
  Query wrong;
  Query close;
};

SessionPlan MakePlan(int n, uint64_t seed) {
  Rng rng(seed);
  RpOptions opts;
  opts.num_heads = static_cast<int>(rng.Range(0, 2));
  opts.theta = 2;
  opts.num_conjunctions = static_cast<int>(rng.Range(1, 3));
  opts.conj_size_max = std::min(4, n);
  SessionPlan plan;
  plan.target = RandomRolePreserving(n, rng, opts);
  plan.wrong = RandomRolePreserving(n, rng, opts);
  plan.close = plan.target;  // revise from the target itself: quick + valid
  size_t job_count = 1 + static_cast<size_t>(rng.Range(0, 2));
  plan.jobs.push_back(0);  // always start with a learn
  for (size_t j = 1; j < job_count; ++j) {
    plan.jobs.push_back(static_cast<int>(rng.Range(0, 3)));
  }
  return plan;
}

void SubmitPlan(SessionRouter& router, SessionRouter::SessionId id,
                const SessionPlan& plan) {
  for (int job : plan.jobs) {
    switch (job) {
      case 0:
        router.SubmitLearn(id);
        break;
      case 1:
        router.SubmitVerify(id, plan.target);
        break;
      case 2:
        router.SubmitVerify(id, plan.wrong);
        break;
      default:
        router.SubmitRevise(id, plan.close);
        break;
    }
  }
}

class RouterStressTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(RouterStressTest, TranscriptsEqualSingleThreadedReplay) {
  auto [sessions, threads] = GetParam();
  int n = 8;

  std::vector<SessionPlan> plans;
  for (int s = 0; s < sessions; ++s) {
    plans.push_back(MakePlan(n, 1000 + static_cast<uint64_t>(s)));
  }

  auto run = [&](int lanes) {
    std::vector<std::string> fingerprints;
    SessionRouter::Options opts;
    opts.threads = lanes;
    SessionRouter router(opts);
    std::vector<SessionRouter::SessionId> ids;
    for (int s = 0; s < sessions; ++s) {
      ids.push_back(router.OpenSimulated(plans[static_cast<size_t>(s)].target));
    }
    for (int s = 0; s < sessions; ++s) {
      SubmitPlan(router, ids[static_cast<size_t>(s)],
                 plans[static_cast<size_t>(s)]);
    }
    router.Drain();
    for (int s = 0; s < sessions; ++s) {
      fingerprints.push_back(
          SessionFingerprint(router.session(ids[static_cast<size_t>(s)])));
    }
    return fingerprints;
  };

  std::vector<std::string> concurrent = run(threads);
  std::vector<std::string> replay = run(1);
  ASSERT_EQ(concurrent.size(), replay.size());
  for (size_t s = 0; s < concurrent.size(); ++s) {
    EXPECT_EQ(concurrent[s], replay[s])
        << "session " << s << " diverged under " << threads << " lanes";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RouterStressTest,
    ::testing::Values(std::make_tuple(8, 4), std::make_tuple(16, 4),
                      std::make_tuple(32, 8), std::make_tuple(64, 8)));

}  // namespace
}  // namespace qhorn
