// Verification-set construction (§4, Fig. 6) including the §4.2 worked
// example, question by question.

#include "src/verify/verification_set.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "src/core/normalize.h"
#include "src/core/random_query.h"
#include "src/util/rng.h"

namespace qhorn {
namespace {

// Collects questions of a family.
std::vector<const VerificationQuestion*> Of(const VerificationSet& set,
                                            QuestionFamily family) {
  std::vector<const VerificationQuestion*> out;
  for (const VerificationQuestion& q : set.questions) {
    if (q.family == family) out.push_back(&q);
  }
  return out;
}

class Section42ExampleTest : public ::testing::Test {
 protected:
  Section42ExampleTest()
      : query_(Query::Parse(
            "∀x1x4→x5 ∀x1x2→x6 ∀x3x4→x5 ∃x1x2x3 ∃x2x3x4 ∃x1x2x5 ∃x2x3x5x6")),
        set_(BuildVerificationSet(query_)) {}

  Query query_;
  VerificationSet set_;
};

TEST_F(Section42ExampleTest, A1HoldsTheFiveDominantTuples) {
  auto a1 = Of(set_, QuestionFamily::kA1);
  ASSERT_EQ(a1.size(), 1u);
  TupleSet expected = TupleSet::Parse(
      {"111001", "011110", "110011", "011011", "100110"});
  EXPECT_EQ(a1[0]->question, expected);
  EXPECT_TRUE(a1[0]->expected_answer);
}

TEST_F(Section42ExampleTest, N1HasFourQuestions) {
  // One per user-written (non-guarantee) dominant conjunction.
  auto n1 = Of(set_, QuestionFamily::kN1);
  ASSERT_EQ(n1.size(), 4u);
  for (const VerificationQuestion* q : n1) {
    EXPECT_FALSE(q->expected_answer);
  }
  // The paper's N1 question for ∃x1x2x3(x6): children of 111001 plus the
  // other four dominant tuples.
  TupleSet expected = TupleSet::Parse({"110001", "101001", "011001",
                                       "011110", "110011", "011011",
                                       "100110"});
  bool found = false;
  for (const VerificationQuestion* q : n1) found |= (q->question == expected);
  EXPECT_TRUE(found) << set_.ToString();
}

TEST_F(Section42ExampleTest, A2MatchesThePaper) {
  auto a2 = Of(set_, QuestionFamily::kA2);
  ASSERT_EQ(a2.size(), 3u);
  // ∀x1x4→x5 ⇒ tg = 100101; children flip x1 / x4.
  TupleSet expected = TupleSet::Parse({"111111", "000101", "100001"});
  bool found = false;
  for (const VerificationQuestion* q : a2) {
    EXPECT_TRUE(q->expected_answer);
    found |= (q->question == expected);
  }
  EXPECT_TRUE(found) << set_.ToString();
}

TEST_F(Section42ExampleTest, N2MatchesThePaper) {
  auto n2 = Of(set_, QuestionFamily::kN2);
  ASSERT_EQ(n2.size(), 3u);
  TupleSet expected_x1x4 = TupleSet::Parse({"111111", "100101"});
  TupleSet expected_x3x4 = TupleSet::Parse({"111111", "001101"});
  TupleSet expected_x1x2 = TupleSet::Parse({"111111", "110010"});
  int matches = 0;
  for (const VerificationQuestion* q : n2) {
    EXPECT_FALSE(q->expected_answer);
    if (q->question == expected_x1x4 || q->question == expected_x3x4 ||
        q->question == expected_x1x2) {
      ++matches;
    }
  }
  EXPECT_EQ(matches, 3) << set_.ToString();
}

TEST_F(Section42ExampleTest, A3CoversTheDominatedGuarantee) {
  // ∃x2x3x4x5 dominates the guarantee of ∀x3x4→x5: roots falsify one of
  // {x3, x4} inside C with x5 false and x6 (the other head) true. The
  // paper's walkthrough lists this single A3 instance; Fig. 6's rule ("for
  // each dominant existential expression ...") — which Lemma 4.6's
  // completeness argument needs — also yields A3 questions for the
  // head-x6 conjunctions, so we generate a superset of the walkthrough.
  auto a3 = Of(set_, QuestionFamily::kA3);
  ASSERT_EQ(a3.size(), 7u) << set_.ToString();
  TupleSet paper_question = TupleSet::Parse({"111111", "010101", "011001"});
  bool found = false;
  for (const VerificationQuestion* q : a3) {
    EXPECT_TRUE(q->expected_answer);
    found |= (q->question == paper_question);
  }
  EXPECT_TRUE(found) << set_.ToString();
}

TEST_F(Section42ExampleTest, A4ListsNonHeadVariables) {
  auto a4 = Of(set_, QuestionFamily::kA4);
  ASSERT_EQ(a4.size(), 1u);
  TupleSet expected = TupleSet::Parse(
      {"111111", "011111", "101111", "110111", "111011"});
  EXPECT_EQ(a4[0]->question, expected);
  EXPECT_TRUE(a4[0]->expected_answer);
}

TEST_F(Section42ExampleTest, QuestionCountIsLinearInK) {
  // k = 7 expressions; the verification set must stay O(k): here exactly
  // 1 (A1) + 4 (N1) + 3 (A2) + 3 (N2) + 7 (A3) + 1 (A4) = 19.
  EXPECT_EQ(set_.questions.size(), 19u);
}

TEST(VerificationSetTest, PureExistentialQuery) {
  Query q = Query::Parse("∃x1x2 ∃x3", 3);
  VerificationSet set = BuildVerificationSet(q);
  // A1 plus two N1s plus A4; no universal questions.
  EXPECT_EQ(Of(set, QuestionFamily::kA1).size(), 1u);
  EXPECT_EQ(Of(set, QuestionFamily::kN1).size(), 2u);
  EXPECT_EQ(Of(set, QuestionFamily::kA2).size(), 0u);
  EXPECT_EQ(Of(set, QuestionFamily::kN2).size(), 0u);
  EXPECT_EQ(Of(set, QuestionFamily::kA4).size(), 1u);
}

TEST(VerificationSetTest, BodylessHeadHasTrivialA2) {
  Query q = Query::Parse("∀x1 ∃x2", 2);
  VerificationSet set = BuildVerificationSet(q);
  auto a2 = Of(set, QuestionFamily::kA2);
  ASSERT_EQ(a2.size(), 1u);
  // No body variables to flip: the question is just {11}.
  EXPECT_EQ(a2[0]->question, TupleSet::Parse({"11"}));
  auto n2 = Of(set, QuestionFamily::kN2);
  ASSERT_EQ(n2.size(), 1u);
  // §4.1.2: the remaining (non-head) variables are set to false, so the
  // universal distinguishing tuple of ∀x1 is 00.
  EXPECT_EQ(n2[0]->question, TupleSet::Parse({"11", "00"}));
}

TEST(VerificationSetTest, RedundantInputIsNormalizedFirst) {
  // ∃x1x2 dominates ∃x1; ∀x1→x3 dominates ∀x1x2→x3.
  Query redundant = Query::Parse("∃x1 ∃x1x2 ∀x1x2→x3 ∀x1→x3");
  Query minimal = Query::Parse("∃x1x2 ∀x1→x3 ∃x1x2x3");
  VerificationSet a = BuildVerificationSet(redundant);
  VerificationSet b = BuildVerificationSet(minimal);
  ASSERT_EQ(a.questions.size(), b.questions.size());
  for (size_t i = 0; i < a.questions.size(); ++i) {
    EXPECT_EQ(a.questions[i].question, b.questions[i].question);
    EXPECT_EQ(a.questions[i].expected_answer, b.questions[i].expected_answer);
  }
}

TEST(VerificationSetTest, SelfConsistencyAcrossRandomQueries) {
  // Every expected label equals qg's own evaluation (the constructor
  // validates this internally; exercise it across a seed sweep).
  for (uint64_t seed = 0; seed < 30; ++seed) {
    Rng rng(seed);
    RpOptions opts;
    opts.num_heads = static_cast<int>(rng.Range(0, 2));
    opts.theta = static_cast<int>(rng.Range(1, 2));
    opts.num_conjunctions = static_cast<int>(rng.Range(1, 3));
    Query q = RandomRolePreserving(6, rng, opts);
    VerificationSet set = BuildVerificationSet(q);
    EXPECT_GT(set.questions.size(), 0u);
  }
}

TEST(VerificationSetTest, ValidationReusesOneCompileWithoutChangingTheSet) {
  // Regression guard for the BM_BuildVerificationSet fix: the construction
  // compiles qg once and shares it between the N1 child walks and the
  // expected-label self-test. Pin the observable behavior on both sides:
  // validation on/off builds the identical set, and every expected label
  // still agrees with the *interpreted* evaluation of the normalized qg
  // (an independent path from the compiled engine the builder now uses).
  for (uint64_t seed = 0; seed < 12; ++seed) {
    Rng rng(seed);
    RpOptions opts;
    opts.num_heads = 2;
    opts.theta = 2;
    opts.num_conjunctions = 3;
    Query q = RandomRolePreserving(10, rng, opts);

    VerificationSetOptions validated;
    validated.validate_expected = true;
    VerificationSetOptions unvalidated;
    unvalidated.validate_expected = false;
    VerificationSet a = BuildVerificationSet(q, validated);
    VerificationSet b = BuildVerificationSet(q, unvalidated);

    ASSERT_EQ(a.questions.size(), b.questions.size());
    for (size_t i = 0; i < a.questions.size(); ++i) {
      EXPECT_EQ(a.questions[i].question, b.questions[i].question);
      EXPECT_EQ(a.questions[i].expected_answer, b.questions[i].expected_answer);
      EXPECT_EQ(a.questions[i].family, b.questions[i].family);
    }
    Query normalized = Normalize(q);
    for (const VerificationQuestion& vq : a.questions) {
      EXPECT_EQ(normalized.Evaluate(vq.question), vq.expected_answer)
          << vq.description << " of " << q.ToString();
    }
  }
}

}  // namespace
}  // namespace qhorn
