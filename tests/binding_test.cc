// The data ↔ Boolean transformation (Fig. 1).

#include "src/relation/binding.h"

#include <gtest/gtest.h>

#include "src/relation/chocolate.h"

namespace qhorn {
namespace {

TEST(BindingTest, Fig1Transformation) {
  // Fig. 1: Global Ground → S1 = {111, 000, 110},
  //         Europe's Finest → S2 = {100, 110} (two tuples collapse).
  BooleanBinding binding(ChocolateSchema(), ChocolatePropositions());
  NestedRelation boxes = Fig1Boxes();
  EXPECT_EQ(binding.ObjectToBoolean(boxes.objects()[0]),
            TupleSet::Parse({"111", "000", "110"}));
  EXPECT_EQ(binding.ObjectToBoolean(boxes.objects()[1]),
            TupleSet::Parse({"100", "110"}));
}

TEST(BindingTest, TupleImageBits) {
  BooleanBinding binding(ChocolateSchema(), ChocolatePropositions());
  // dark, no filling, from Belgium → only p1 true.
  EXPECT_EQ(binding.ToBoolean(
                MakeChocolate(true, false, true, true, "Belgium")),
            ParseTuple("100"));
  // white, filled, Madagascar → p2 p3.
  EXPECT_EQ(binding.ToBoolean(
                MakeChocolate(false, true, false, false, "Madagascar")),
            ParseTuple("011"));
}

TEST(BindingDeathTest, InterferingPropositionsRejected) {
  std::vector<Proposition> props = {
      Proposition::Equals("origin", Value::Str("Madagascar")),
      Proposition::Equals("origin", Value::Str("Belgium")),
  };
  EXPECT_DEATH(BooleanBinding(ChocolateSchema(), props), "interfere");
}

TEST(BindingDeathTest, UnknownAttributeRejected) {
  std::vector<Proposition> props = {Proposition::BoolAttr("isVegan")};
  EXPECT_DEATH(BooleanBinding(ChocolateSchema(), props), "no attribute");
}

TEST(BindingDeathTest, EmptyPropositionListRejected) {
  EXPECT_DEATH(BooleanBinding(ChocolateSchema(), {}), "propositions");
}

}  // namespace
}  // namespace qhorn
