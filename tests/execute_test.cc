// Running queries over the nested relation — the end of the pipeline.

#include "src/relation/execute.h"

#include <gtest/gtest.h>

#include "src/learn/rp_learner.h"
#include "src/core/normalize.h"
#include "src/relation/chocolate.h"
#include "src/relation/synthesize.h"

namespace qhorn {
namespace {

class ExecuteTest : public ::testing::Test {
 protected:
  ExecuteTest()
      : binding_(ChocolateSchema(), ChocolatePropositions()),
        boxes_("Box", ChocolateSchema()) {
    // The two Fig. 1 boxes plus one that satisfies query (1).
    NestedRelation fig1 = Fig1Boxes();
    for (const NestedObject& box : fig1.objects()) {
      NestedObject copy = box;
      boxes_.AddObject(std::move(copy));
    }
    NestedObject good;
    good.name = "Madagascar Select";
    good.tuples = FlatRelation(ChocolateSchema());
    good.tuples.AddRow(MakeChocolate(true, true, false, false, "Madagascar"));
    good.tuples.AddRow(MakeChocolate(true, false, true, true, "Belgium"));
    boxes_.AddObject(std::move(good));
  }

  BooleanBinding binding_;
  NestedRelation boxes_;
};

TEST_F(ExecuteTest, IntroQuerySelectsTheRightBox) {
  Query q = IntroChocolateQuery();
  std::vector<size_t> answers = ExecuteQuery(q, binding_, boxes_);
  ASSERT_EQ(answers.size(), 1u);
  EXPECT_EQ(boxes_.objects()[answers[0]].name, "Madagascar Select");
}

TEST_F(ExecuteTest, SelectAnswersReturnsObjects) {
  Query q = IntroChocolateQuery();
  auto answers = SelectAnswers(q, binding_, boxes_);
  ASSERT_EQ(answers.size(), 1u);
  EXPECT_EQ(answers[0]->name, "Madagascar Select");
}

TEST_F(ExecuteTest, TrivialQueryReturnsEverything) {
  Query top(3);
  EXPECT_EQ(ExecuteQuery(top, binding_, boxes_).size(),
            boxes_.objects().size());
}

TEST_F(ExecuteTest, UnsatisfiableConjunctionReturnsNothing) {
  // No box holds a filled Madagascar white chocolate... actually: require
  // a non-dark filled Madagascar chocolate: ∃(¬p1 ∧ ...) is not
  // expressible; instead ask for all-dark AND some chocolate that is
  // simultaneously from Madagascar with filling in the Europe's Finest
  // style — none of the three boxes is all-dark with such a tuple except
  // Madagascar Select, so tighten until empty: ∀x2 (all filled).
  Query q = Query::Parse("∀x2", 3);
  EXPECT_TRUE(ExecuteQuery(q, binding_, boxes_).empty());
}

TEST_F(ExecuteTest, LearnedQueryExecutesLikeTheIntention) {
  Query intended = IntroChocolateQuery();
  DataDomainOracle user(intended, &binding_);
  RpLearnerResult learned = LearnRolePreserving(3, &user);
  ASSERT_TRUE(Equivalent(learned.query, intended));
  EXPECT_EQ(ExecuteQuery(learned.query, binding_, boxes_),
            ExecuteQuery(intended, binding_, boxes_));
}

TEST_F(ExecuteTest, RelaxedGuaranteesAdmitMoreBoxes) {
  // An empty box satisfies ∀x1 only under the footnote-1 relaxation.
  NestedObject empty;
  empty.name = "empty";
  empty.tuples = FlatRelation(ChocolateSchema());
  boxes_.AddObject(std::move(empty));
  Query q = Query::Parse("∀x1", 3);
  EvalOptions relaxed;
  relaxed.require_guarantees = false;
  size_t strict_count = ExecuteQuery(q, binding_, boxes_).size();
  size_t relaxed_count = ExecuteQuery(q, binding_, boxes_, relaxed).size();
  EXPECT_EQ(relaxed_count, strict_count + 1);
}

TEST_F(ExecuteTest, ArityMismatchAborts) {
  Query q = Query::Parse("∃x1", 4);
  EXPECT_DEATH(ExecuteQuery(q, binding_, boxes_), "arity");
}

}  // namespace
}  // namespace qhorn
