// PAC-style sampling verification (§6 extension).

#include "src/learn/pac.h"

#include <gtest/gtest.h>

#include <cmath>

namespace qhorn {
namespace {

TEST(RandomObjectTest, RespectsBounds) {
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    TupleSet object = RandomObject(6, rng, 4);
    EXPECT_GE(object.size(), 1u);
    EXPECT_LE(object.size(), 4u);
    for (Tuple t : object) EXPECT_TRUE(IsSubset(t, AllTrue(6)));
  }
}

TEST(PacVerifyTest, ConsistentHypothesisPasses) {
  Query q = Query::Parse("∀x1x2→x4 ∃x3", 4);
  QueryOracle user(q);
  Rng rng(1);
  PacReport report = PacVerify(q, &user, rng);
  EXPECT_TRUE(report.consistent);
  // m = ⌈(1/ε)·ln(1/δ)⌉ = ⌈10·ln 20⌉ = 30 for the defaults.
  EXPECT_EQ(report.samples, 30);
}

TEST(PacVerifyTest, SampleCountTracksEpsilonDelta) {
  Query q = Query::Parse("∃x1", 2);
  QueryOracle user(q);
  Rng rng(2);
  PacOptions opts;
  opts.epsilon = 0.01;
  opts.delta = 0.01;
  PacReport report = PacVerify(q, &user, rng, opts);
  EXPECT_EQ(report.samples,
            static_cast<int64_t>(std::ceil(std::log(100.0) / 0.01)));
}

TEST(PacVerifyTest, GrossMismatchIsCaughtQuickly) {
  Query hypothesis = Query::Parse("∃x1", 3);
  Query intended = Query::Parse("∀x1", 3);
  QueryOracle user(intended);
  Rng rng(3);
  PacReport report = PacVerify(hypothesis, &user, rng);
  EXPECT_FALSE(report.consistent);
  EXPECT_NE(hypothesis.Evaluate(report.counterexample),
            intended.Evaluate(report.counterexample));
}

TEST(EstimateDisagreementTest, ZeroForIdenticalQueries) {
  Query q = Query::Parse("∃x1x2 ∀x3", 3);
  Rng rng(4);
  EXPECT_DOUBLE_EQ(EstimateDisagreement(q, q, 500, rng), 0.0);
}

TEST(EstimateDisagreementTest, PositiveForDifferentQueries) {
  Query a = Query::Parse("∃x1", 3);
  Query b = Query::Parse("∀x1", 3);
  Rng rng(6);
  double rate = EstimateDisagreement(a, b, 2000, rng);
  EXPECT_GT(rate, 0.2);
  EXPECT_LT(rate, 0.9);
}

TEST(EstimateDisagreementTest, NearZeroForNearQueries) {
  // Queries differing only on rare objects disagree rarely.
  Query a = Query::Parse("∃x1", 6);
  Query b = Query::Parse("∃x1 ∃x2x3x4x5x6", 6);
  Rng rng(7);
  double near = EstimateDisagreement(a, b, 2000, rng);
  Query c = Query::Parse("∀x1", 6);
  double far = EstimateDisagreement(a, c, 2000, rng);
  EXPECT_LT(near, far);
}

}  // namespace
}  // namespace qhorn
