// Query revision (§6 future work): when the user's intention drifts a
// little from a known query, revising costs far fewer questions than
// relearning — the seeded lattice descent pays only for the distance.

#include <cstdio>

#include "src/core/normalize.h"
#include "src/learn/revision.h"

using namespace qhorn;

namespace {

void Demo(const char* label, const Query& given, const Query& intended) {
  QueryOracle user1(intended);
  RevisionResult revised = ReviseQuery(given, &user1);

  QueryOracle user2(intended);
  CountingOracle scratch(&user2);
  RpLearnerResult full = LearnRolePreserving(given.n(), &scratch);

  std::printf("%s\n", label);
  std::printf("  given:     %s\n", given.ToString().c_str());
  std::printf("  intended:  %s\n", intended.ToString().c_str());
  std::printf("  distance:  %d   seeded: %s\n", QueryDistance(given, intended),
              revised.used_seed ? "yes" : "no");
  std::printf("  revised:   %s   (correct: %s)\n",
              revised.query.ToString().c_str(),
              Equivalent(revised.query, intended) ? "yes" : "NO");
  std::printf("  questions: %lld to revise  vs  %lld to learn from scratch\n\n",
              static_cast<long long>(revised.total_questions()),
              static_cast<long long>(scratch.stats().questions));
  (void)full;
}

}  // namespace

int main() {
  std::printf("=== query revision: pay for the distance, not the query ===\n\n");

  Demo("no change (verification alone suffices):",
       Query::Parse("∃x1x2x3x4x5 ∃x6x7 ∃x8", 8),
       Query::Parse("∃x1x2x3x4x5 ∃x6x7 ∃x8", 8));

  Demo("one variable dropped from a conjunction (distance 1):",
       Query::Parse("∃x1x2x3x4x5x8 ∃x6x7 ∃x8", 8),
       Query::Parse("∃x1x2x3x4x5 ∃x6x7 ∃x8", 8));

  Demo("two conjunctions shrink (distance 2):",
       Query::Parse("∃x1x2x3x4 ∃x5x6x7 ∃x8", 8),
       Query::Parse("∃x1x2x3 ∃x5x6 ∃x8", 8));

  Demo("a universal body changes (re-learned cheaply):",
       Query::Parse("∀x1x2→x6 ∃x3x4x5", 6),
       Query::Parse("∀x1x3→x6 ∃x3x4x5 ∃x2", 6));

  return 0;
}
