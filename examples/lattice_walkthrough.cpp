// Traces the §3.2.2 lattice learner on the paper's target query (2),
// printing every membership question the algorithm asks while it descends
// the six-variable Boolean lattice — the executable version of the paper's
// level-by-level walkthrough.

#include <cstdio>

#include "src/learn/rp_learner.h"
#include "src/oracle/oracle.h"

using namespace qhorn;

namespace {

// Prints every question as it is asked.
class TracingOracle : public MembershipOracle {
 public:
  TracingOracle(MembershipOracle* inner, int n) : inner_(inner), n_(n) {}

  bool IsAnswer(const TupleSet& question) override {
    bool answer = inner_->IsAnswer(question);
    std::printf("  Q%-3lld %-60s → %s\n", static_cast<long long>(++count_),
                question.ToString(n_).c_str(),
                answer ? "answer" : "non-answer");
    return answer;
  }

  int64_t count() const { return count_; }

 private:
  MembershipOracle* inner_;
  int n_;
  int64_t count_ = 0;
};

}  // namespace

int main() {
  Query target = Query::Parse(
      "∀x1x4→x5 ∀x3x4→x5 ∀x1x2→x6 ∃x1x2x3 ∃x2x3x4 ∃x1x2x5 ∃x2x3x5x6");
  std::printf("=== §3.2.2 walkthrough: learning %s ===\n\n",
              target.ToString().c_str());

  QueryOracle user(target);
  TracingOracle trace(&user, target.n());

  std::printf("phase 1: universal head variables and their bodies\n");
  RpUniversalResult uni = LearnUniversalHorns(target.n(), &trace);
  std::printf("\nlearned universal Horn expressions:\n");
  for (const UniversalHorn& u : uni.horns) {
    std::printf("  %s\n", u.ToString().c_str());
  }

  std::printf("\nphase 2: existential conjunctions via the Boolean lattice\n");
  RpExistentialResult ex =
      LearnExistentialConjunctions(target.n(), &trace, uni.horns);
  std::printf("\ndistinguishing tuples found (the paper lists "
              "{110011, 100110, 111001, 011011, 011110}):\n");
  for (VarSet conj : ex.conjunctions) {
    std::printf("  %s  =  %s\n", FormatTuple(conj, target.n()).c_str(),
                ExistentialConj{conj}.ToString().c_str());
  }

  std::printf("\ntotal membership questions: %lld\n",
              static_cast<long long>(trace.count()));
  std::printf("lattice levels explored: %lld, tuples pruned: %lld\n",
              static_cast<long long>(ex.trace.levels),
              static_cast<long long>(ex.trace.pruned_tuples));
  return 0;
}
