// A DataPlay-style session (§1, §5): the user's questions are materialized
// from a real chocolate database where possible (synthesized otherwise),
// the full response history is kept, and a deliberately wrong answer is
// corrected mid-session — restarting learning from the point of error.

#include <cstdio>

#include "src/core/normalize.h"
#include "src/learn/rp_learner.h"
#include "src/oracle/transcript.h"
#include "src/relation/chocolate.h"

using namespace qhorn;

namespace {

// A user who mislabels one question (they were distracted).
class DistractedUser : public MembershipOracle {
 public:
  DistractedUser(MembershipOracle* inner, int64_t wrong_at)
      : inner_(inner), wrong_at_(wrong_at) {}

  bool IsAnswer(const TupleSet& question) override {
    bool truth = inner_->IsAnswer(question);
    return ++asked_ == wrong_at_ ? !truth : truth;
  }

 private:
  MembershipOracle* inner_;
  int64_t wrong_at_;
  int64_t asked_ = 0;
};

}  // namespace

int main() {
  std::printf("=== DataPlay-style session with database-backed questions ===\n\n");

  BooleanBinding binding(ChocolateSchema(), ChocolatePropositions());
  Rng rng(2024);
  FlatRelation database = RandomChocolateDatabase(200, rng);
  DatabaseSelector selector(&database, &binding);

  // The intended query: only dark chocolates, some filled, some from
  // Madagascar.
  Query intended = Query::Parse("∀x1 ∃x2 ∃x3", 3);
  std::printf("hidden intention: %s\n\n", intended.ToString().c_str());

  // Show how questions look when drawn from the database.
  TupleSet sample_question = TupleSet::Parse({"111", "011"});
  NestedObject box = selector.MaterializeObject(sample_question, "sample", rng);
  std::printf("a membership question, materialized from the database:\n%s",
              box.tuples.ToString().c_str());
  std::printf("(%lld tuples from the database, %lld synthesized so far)\n\n",
              static_cast<long long>(selector.from_pool()),
              static_cast<long long>(selector.synthesized()));

  // Session 1: the user mislabels question #5; learning goes wrong.
  QueryOracle truth(intended);
  DistractedUser distracted(&truth, /*wrong_at=*/5);
  TranscriptOracle history(&distracted);
  RpLearnerResult wrong = LearnRolePreserving(3, &history);
  std::printf("learned with one wrong answer:  %s   (equivalent: %s)\n",
              wrong.query.ToString().c_str(),
              Equivalent(wrong.query, intended) ? "yes" : "no");

  // The user reviews the history and fixes answer #5.
  std::printf("\nresponse history before correction:\n%s",
              history.ToString(3).c_str());
  history.Correct(4);
  std::printf("...user flips the response to Q5 and learning restarts "
              "from that point.\n\n");

  // Session 2: replay the corrected prefix; only new questions reach the
  // (now attentive) user.
  CountingOracle attentive(&truth);
  ReplayOracle replay(history.entries(), &attentive);
  RpLearnerResult fixed = LearnRolePreserving(3, &replay);
  std::printf("learned after correction:       %s   (equivalent: %s)\n",
              fixed.query.ToString().c_str(),
              Equivalent(fixed.query, intended) ? "yes" : "no");
  std::printf("replayed %lld recorded answers; asked the user only %lld "
              "fresh questions\n",
              static_cast<long long>(replay.replayed()),
              static_cast<long long>(replay.asked()));
  return Equivalent(fixed.query, intended) ? 0 : 1;
}
