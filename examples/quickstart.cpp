// Quickstart: learn the intro chocolate query by example.
//
// The scenario of the paper's introduction: you want "a box with dark
// chocolates — some sugar-free with nuts or filling". Here the intended
// query is equation (1): every chocolate is dark, and some chocolate is
// filled and from Madagascar. The learner plays the pedantic server who is
// finally asking the right questions; the simulated user answers by
// inspecting actual boxes of chocolates.

#include <cstdio>

#include "src/core/normalize.h"
#include "src/learn/rp_learner.h"
#include "src/oracle/transcript.h"
#include "src/relation/chocolate.h"
#include "src/relation/execute.h"
#include "src/verify/verifier.h"

using namespace qhorn;

int main() {
  std::printf("=== qhorn quickstart: query-by-example over chocolates ===\n\n");

  // 1. The user supplies propositions over the embedded relation.
  std::vector<Proposition> props = ChocolatePropositions();
  for (size_t i = 0; i < props.size(); ++i) {
    std::printf("p%zu: %s\n", i + 1, props[i].label().c_str());
  }
  BooleanBinding binding(ChocolateSchema(), props);

  // 2. The user's hidden intention — query (1) of the paper.
  Query intended = IntroChocolateQuery();
  std::printf("\nintended (hidden) query: %s\n", intended.ToString().c_str());

  // 3. The learner asks membership questions; the simulated user answers
  //    by looking at materialized boxes. Every exchange is recorded.
  DataDomainOracle user(intended, &binding);
  TranscriptOracle history(&user);
  RpLearnerResult result = LearnRolePreserving(binding.n(), &history);

  std::printf("\nquestion/answer transcript (%zu questions):\n",
              history.entries().size());
  std::printf("%s", history.ToString(binding.n()).c_str());

  std::printf("\nfirst box shown to the user:\n%s",
              user.shown_objects().front().tuples.ToString().c_str());

  // 4. The learned query is exactly the intention.
  std::printf("\nlearned query:  %s\n", result.query.ToString().c_str());
  std::printf("normalized:     %s\n",
              Normalize(result.query).ToString().c_str());
  std::printf("equivalent to the intention: %s\n",
              Equivalent(result.query, intended) ? "yes" : "NO");

  // 5. And it passes its own O(k) verification set.
  VerificationReport report = VerifyQuery(result.query, &user);
  std::printf("verification (%lld questions): %s\n",
              static_cast<long long>(report.questions_asked),
              report.accepted ? "accepted" : "rejected");

  // 6. Finally: run the learned query against the store's boxes.
  NestedRelation boxes = Fig1Boxes();
  NestedObject good;
  good.name = "Madagascar Select";
  good.tuples = FlatRelation(ChocolateSchema());
  good.tuples.AddRow(MakeChocolate(true, true, false, false, "Madagascar"));
  good.tuples.AddRow(MakeChocolate(true, false, true, true, "Belgium"));
  boxes.AddObject(std::move(good));

  std::printf("\nboxes matching the learned query:\n");
  for (const NestedObject* box : SelectAnswers(result.query, binding, boxes)) {
    std::printf("  ✓ %s\n", box->name.c_str());
  }
  return report.accepted ? 0 : 1;
}
