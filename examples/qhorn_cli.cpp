// qhorn_cli — drive a full session against a hidden query from the
// command line.
//
// Usage:
//   qhorn_cli                      # uses the paper's §3.2.2 query
//   qhorn_cli "∀x1x2→x3 ∃x4"       # any role-preserving query (shorthand)
//   qhorn_cli "A x1 x2 -> x3; E x4"
//
// The hidden query plays the user; the session learns it, verifies the
// result, answers an equivalence question, and prints the transcript
// summary — everything a front-end would wire up, in one binary.

#include <cstdio>

#include "src/core/classify.h"
#include "src/core/normalize.h"
#include "src/core/witness.h"
#include "src/session/session.h"

using namespace qhorn;

int main(int argc, char** argv) {
  std::string text = argc > 1
                         ? argv[1]
                         : "∀x1x4→x5 ∀x3x4→x5 ∀x1x2→x6 "
                           "∃x1x2x3 ∃x2x3x4 ∃x1x2x5 ∃x2x3x5x6";
  Query intended = Query::Parse(text);
  if (!IsRolePreserving(intended)) {
    std::fprintf(stderr,
                 "the learner supports role-preserving qhorn queries; "
                 "'%s' repeats a head variable as a body variable\n",
                 intended.ToString().c_str());
    return 2;
  }
  std::printf("hidden query (n=%d, k=%d, θ=%d): %s\n", intended.n(),
              intended.size_k(), CausalDensity(intended),
              intended.ToString().c_str());

  QueryOracle user(intended);
  QuerySession session(intended.n(), &user);

  const Query& learned = session.Learn();
  std::printf("learned:    %s\n", learned.ToString().c_str());
  std::printf("normalized: %s\n", Normalize(learned).ToString().c_str());
  std::printf("questions asked: %lld (after caching; %zu shown in history)\n",
              static_cast<long long>(session.questions_asked()),
              session.history().size());

  bool ok = Equivalent(learned, intended);
  std::printf("exact: %s\n", ok ? "yes" : "NO");

  VerificationReport report = session.Verify(learned);
  std::printf("verification of the learned query: %s (%lld questions)\n",
              report.accepted ? "accepted" : "rejected",
              static_cast<long long>(report.questions_asked));

  EquivalenceOracle equivalence(intended);
  auto counterexample = equivalence.Counterexample(learned);
  std::printf("equivalence question: %s\n",
              counterexample.has_value() ? "counterexample returned!"
                                         : "no counterexample — exact");
  return ok && report.accepted && !counterexample.has_value() ? 0 : 1;
}
