// Reproduces the §4.2 worked example: the verification set of
//
//   ∀x1x4→x5 ∀x1x2→x6 ∀x3x4→x5 ∃x1x2x3 ∃x2x3x4 ∃x1x2x5 ∃x2x3x5x6
//
// question family by question family, then demonstrates how an intended
// query that differs (the A3 scenario: an extra body x2x4 for x5) is
// caught.

#include <cstdio>

#include "src/oracle/oracle.h"
#include "src/verify/verifier.h"

using namespace qhorn;

int main() {
  Query given = Query::Parse(
      "∀x1x4→x5 ∀x1x2→x6 ∀x3x4→x5 ∃x1x2x3 ∃x2x3x4 ∃x1x2x5 ∃x2x3x5x6");
  std::printf("=== verification set for the paper's §4.2 query ===\n");
  std::printf("qg = %s\n\n", given.ToString().c_str());

  VerificationSet set = BuildVerificationSet(given);
  std::printf("%s\n", set.ToString().c_str());
  std::printf("questions: %zu   total tuples: %lld\n\n", set.questions.size(),
              static_cast<long long>(set.total_tuples()));

  // Case 1: the user's intention matches — every classification agrees.
  {
    QueryOracle user(given);
    VerificationReport report = RunVerification(set, &user);
    std::printf("user intends qg itself      → %s\n",
                report.accepted ? "accepted" : "rejected");
  }

  // Case 2: the user additionally requires ∀x2x4→x5 — incomparable with
  // both of x5's bodies and invisible to A1/N1/A2/N2/A4. Only A3 notices.
  {
    Query intended = Query::Parse(
        "∀x1x4→x5 ∀x1x2→x6 ∀x3x4→x5 ∀x2x4→x5 "
        "∃x1x2x3 ∃x2x3x4 ∃x1x2x5 ∃x2x3x5x6");
    QueryOracle user(intended);
    VerificationReport report = RunVerification(set, &user);
    std::printf("user also wants ∀x2x4→x5    → %s",
                report.accepted ? "accepted" : "rejected");
    for (const Discrepancy& d : report.discrepancies) {
      std::printf("  [caught by %s: %s]", FamilyName(d.family),
                  d.description.c_str());
    }
    std::printf("\n");
  }

  // Case 3: the user wants a weaker body (∀x4→x5 dominates ∀x1x4→x5).
  {
    Query intended = Query::Parse(
        "∀x4→x5 ∀x1x2→x6 ∃x1x2x3 ∃x2x3x4 ∃x1x2x5 ∃x2x3x5x6");
    QueryOracle user(intended);
    VerificationReport report = RunVerification(set, &user);
    std::printf("user wants ∀x4→x5 instead   → %s",
                report.accepted ? "accepted" : "rejected");
    for (const Discrepancy& d : report.discrepancies) {
      std::printf("  [caught by %s]", FamilyName(d.family));
    }
    std::printf("\n");
  }

  // Case 4: the user drops a conjunction.
  {
    Query intended = Query::Parse(
        "∀x1x4→x5 ∀x1x2→x6 ∀x3x4→x5 ∃x1x2x3 ∃x2x3x4 ∃x1x2x5", 6);
    QueryOracle user(intended);
    VerificationReport report = RunVerification(set, &user);
    std::printf("user drops ∃x2x3x5x6        → %s",
                report.accepted ? "accepted" : "rejected");
    for (const Discrepancy& d : report.discrepancies) {
      std::printf("  [caught by %s]", FamilyName(d.family));
    }
    std::printf("\n");
  }
  return 0;
}
